"""Fault-aware engine + SC-R behaviour under injected failures."""

import pytest

from repro import (
    FaultPlan,
    Outage,
    SpeculativeCaching,
    SpeculativeCachingResilient,
    run_online,
    run_online_faulty,
)
from repro.paperdata import fig2_instance, fig6_instance, fig7_instance
from repro.schedule import validate_schedule

from ..conftest import make_instance


def scr(**kwargs):
    return SpeculativeCachingResilient(**kwargs)


class TestFaultFreeEquivalence:
    """Empty plan + k=1 must reproduce plain SC exactly (acceptance)."""

    @pytest.mark.parametrize(
        "instance_factory", [fig2_instance, fig6_instance, fig7_instance]
    )
    def test_schedule_and_cost_match_sc_on_goldens(self, instance_factory):
        inst = instance_factory()
        plain = run_online(SpeculativeCaching(), inst)
        faulty = run_online_faulty(scr(replicas=1), inst, FaultPlan())
        assert faulty.schedule == plain.schedule
        assert faulty.cost == plain.cost
        assert faulty.transfers == plain.transfers

    def test_fig7_epoch_variant_matches_too(self):
        inst = fig7_instance()
        plain = run_online(SpeculativeCaching(epoch_size=5), inst)
        faulty = run_online_faulty(
            scr(replicas=1, epoch_size=5), inst, FaultPlan()
        )
        assert faulty.schedule == plain.schedule
        assert faulty.cost == plain.cost

    def test_no_fault_artifacts_on_empty_plan(self):
        res = run_online_faulty(scr(replicas=1), fig6_instance(), FaultPlan())
        assert res.blackouts == []
        assert res.reseeds == []
        assert res.penalty_cost == 0.0
        assert res.total_cost == res.cost
        assert all(e[0] == "xfer-ok" for e in res.fault_log)

    def test_scr_runs_on_plain_engine_too(self):
        # SC-R is a regular OnlineAlgorithm; without a fault context it
        # simply replicates eagerly.
        inst = fig6_instance()
        res = run_online(scr(replicas=2), inst)
        assert res.counters["replications"] >= 1
        validate_schedule(res.schedule, inst)


class TestEngineContract:
    def test_rejects_non_fault_aware_algorithm(self):
        with pytest.raises(TypeError, match="not fault-aware"):
            run_online_faulty(
                SpeculativeCaching(), fig6_instance(), FaultPlan()
            )

    def test_crash_closes_lifetime_with_crash_marker(self):
        inst = make_instance([1.0, 5.0], [0, 0], m=2)
        plan = FaultPlan(outages=(Outage(0, 2.0, 3.0),))
        res = run_online_faulty(scr(replicas=1), inst, plan)
        crashed = [l for l in res.lifetimes if l.ended_by == "crash"]
        assert len(crashed) == 1
        assert crashed[0].server == 0
        assert crashed[0].end == 2.0

    def test_crash_at_request_time_strikes_first(self):
        # Crash on the requested server exactly at the request instant:
        # the copy is gone, so the request cannot be a local hit.
        inst = make_instance([1.0, 1.5], [0, 0], m=2)
        plan = FaultPlan(outages=(Outage(0, 1.5, 2.0),))
        res = run_online_faulty(scr(replicas=1), inst, plan)
        assert res.counters["crash_losses"] == 1
        # The t=1.5 request was served by a remote read (server down).
        assert res.counters["remote_reads"] == 1

    def test_fault_log_records_engine_delivered_events(self):
        inst = make_instance([1.0, 5.0], [0, 1], m=2)
        plan = FaultPlan(outages=(Outage(1, 2.0, 3.0),))
        res = run_online_faulty(scr(replicas=1), inst, plan)
        assert ("crash", 2.0, 1) in res.fault_log
        assert ("recover", 3.0, 1) in res.fault_log

    def test_context_detached_after_run(self):
        algo = scr(replicas=1)
        run_online_faulty(algo, fig6_instance(), FaultPlan())
        assert algo.faults is None


class TestCrashRecovery:
    def test_single_crash_with_k2_repairs_replica(self):
        inst = make_instance([1.0, 2.0, 3.0, 4.0], [0, 1, 0, 1], m=3)
        plan = FaultPlan(outages=(Outage(1, 2.5, 3.5),))
        res = run_online_faulty(scr(replicas=2), inst, plan)
        assert res.blackouts == []
        assert res.counters["crash_losses"] >= 1
        assert res.counters["replications"] >= 1
        validate_schedule(res.schedule, inst, allowed_gaps=res.allowed_gaps())

    def test_reseed_after_total_blackout(self):
        inst = make_instance([1.0, 2.0, 3.0], [0, 1, 0], m=2)
        plan = FaultPlan(
            outages=(Outage(0, 1.2, 1.6), Outage(1, 1.2, 1.8))
        )
        res = run_online_faulty(scr(replicas=2), inst, plan)
        assert len(res.blackouts) == 1
        a, b = res.blackouts[0]
        assert a == pytest.approx(1.2)
        assert b == pytest.approx(1.6)  # first recovery re-seeds
        assert res.counters["reseeds"] == 1
        assert res.penalties["reseed"] == pytest.approx(1.0)
        validate_schedule(res.schedule, inst, allowed_gaps=res.allowed_gaps())

    def test_request_during_total_blackout_is_dropped_with_penalty(self):
        inst = make_instance([1.0, 1.5, 3.0], [0, 1, 0], m=2)
        plan = FaultPlan(
            outages=(Outage(0, 1.2, 2.0), Outage(1, 1.2, 2.0))
        )
        res = run_online_faulty(scr(replicas=2), inst, plan)
        assert res.counters["dropped_requests"] == 1
        assert res.penalties["dropped"] == pytest.approx(1.0)
        assert res.total_cost == pytest.approx(res.cost + res.penalty_cost)
        validate_schedule(res.schedule, inst, allowed_gaps=res.allowed_gaps())

    def test_blackout_is_outcome_not_crash(self):
        # Plain SC would raise RuntimeError on losing every copy; the
        # fault-aware stack records the window and carries on.
        inst = make_instance([1.0, 2.0, 3.0], [0, 1, 0], m=2)
        plan = FaultPlan(
            outages=(Outage(0, 0.5, 2.5), Outage(1, 1.5, 2.5))
        )
        res = run_online_faulty(scr(replicas=2), inst, plan)
        assert res.blackouts  # observed, not raised
        validate_schedule(res.schedule, inst, allowed_gaps=res.allowed_gaps())


class TestNeverBlackoutUnderSingleCrash:
    """Acceptance: k=2 SC-R survives any single-server crash schedule."""

    @pytest.mark.parametrize("seed", range(10))
    def test_sequential_single_crashes_never_blackout(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n, m = 60, 5
        times = np.cumsum(rng.exponential(1.0, size=n)) + 1.0
        servers = rng.integers(0, m, size=n)
        inst = make_instance(times, servers, m=m)
        t0, tn = 0.0, float(times[-1])
        # One server down at a time: chop the horizon into disjoint
        # slices, each assigned to a random victim.
        cuts = np.sort(rng.uniform(t0, tn, size=6))
        edges = [t0] + list(cuts) + [tn]
        outages = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            victim = int(rng.integers(0, m))
            outages.append(Outage(victim, float(lo), float(hi)))
        plan = FaultPlan(outages=tuple(outages), seed=seed)
        res = run_online_faulty(scr(replicas=2), inst, plan)
        assert res.blackouts == []
        assert res.schedule.gaps(t0, tn) == []
        assert res.counters["dropped_requests"] == 0
        validate_schedule(res.schedule, inst, allowed_gaps=res.allowed_gaps())

    def test_alternating_victims_with_transfer_loss(self):
        inst = make_instance(
            [float(i) for i in range(1, 21)],
            [i % 3 for i in range(20)],
            m=3,
        )
        outages = tuple(
            Outage(i % 3, 0.5 + i, 1.4 + i) for i in range(0, 18, 2)
        )
        plan = FaultPlan(outages=outages, loss_rate=0.3, seed=9)
        res = run_online_faulty(scr(replicas=2, max_retries=8), inst, plan)
        assert res.blackouts == []
        assert res.schedule.gaps(0.0, 20.0) == []


class TestRetryAccounting:
    def test_lost_attempts_accrue_backoff_latency(self):
        inst = make_instance([1.0, 2.0, 3.0, 4.0], [1, 0, 1, 0], m=2)
        plan = FaultPlan(loss_rate=0.6, seed=4)
        res = run_online_faulty(scr(replicas=1, max_retries=10), inst, plan)
        lost = [e for e in res.fault_log if e[0] == "xfer-lost"]
        assert lost, "seed 4 at loss 0.6 must lose some attempt"
        expected = sum(5.0 * 2 ** (e[4] - 1) for e in lost)
        assert res.retry_latency == pytest.approx(expected)

    def test_retry_budget_exhaustion_falls_back_or_drops(self):
        # Extreme loss with no retries: transfers keep failing; the run
        # must still terminate with exact accounting.
        inst = make_instance([1.0, 2.0, 3.0], [1, 2, 1], m=3)
        plan = FaultPlan(loss_rate=0.97, seed=2)
        res = run_online_faulty(scr(replicas=1, max_retries=0), inst, plan)
        dropped = res.counters["dropped_requests"]
        assert res.penalties.get("dropped", 0.0) == pytest.approx(
            1.0 * dropped
        )
        assert res.total_cost == pytest.approx(res.cost + res.penalty_cost)


class TestDeterminism:
    def test_same_seed_identical_everything(self):
        inst = fig6_instance()
        plan = FaultPlan(
            outages=(Outage(0, 0.6, 2.0), Outage(2, 1.0, 1.5)),
            loss_rate=0.2,
            seed=13,
        )
        a = run_online_faulty(scr(replicas=2), inst, plan)
        b = run_online_faulty(scr(replicas=2), inst, plan)
        assert a.fault_log == b.fault_log
        assert a.schedule == b.schedule
        assert a.cost == b.cost
        assert a.counters == b.counters
        assert a.penalties == b.penalties
        assert a.blackouts == b.blackouts
        assert a.retry_latency == b.retry_latency

    def test_different_seed_changes_loss_pattern(self):
        inst = make_instance(
            [float(i) * 0.7 for i in range(1, 30)],
            [i % 4 for i in range(29)],
            m=4,
        )
        a = run_online_faulty(
            scr(replicas=2, max_retries=1), inst, FaultPlan(loss_rate=0.5, seed=1)
        )
        b = run_online_faulty(
            scr(replicas=2, max_retries=1), inst, FaultPlan(loss_rate=0.5, seed=2)
        )
        assert a.fault_log != b.fault_log


class TestParameterValidation:
    def test_bad_replicas_rejected(self):
        with pytest.raises(ValueError):
            scr(replicas=0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError):
            scr(max_retries=-1)

    def test_name_reflects_k(self):
        assert scr(replicas=3).name == "sc-r(k=3)"
