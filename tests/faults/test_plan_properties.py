"""Property tests for outage-window merging (``FaultPlan`` construction).

Merging is the invariant everything downstream leans on: ``events()``
emits alternating crash/recover pairs per server only because
construction collapses overlapping *and touching* windows.  The
strategies deliberately generate touching (``end == next start``) and
zero-length (``start == end``) outages — the boundary shapes a uniform
random draw would almost never produce.
"""

from hypothesis import given, strategies as st

from repro import FaultPlan, Outage

# Times on a coarse grid so touching/equal endpoints are common, plus
# exact-float arithmetic (k/4) so half-open semantics are testable.
_grid = st.integers(min_value=0, max_value=40).map(lambda k: k / 4.0)


@st.composite
def outage_lists(draw, max_servers=3, max_outages=8):
    outages = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_outages))):
        server = draw(st.integers(min_value=0, max_value=max_servers - 1))
        a = draw(_grid)
        b = draw(_grid)
        lo, hi = min(a, b), max(a, b)  # zero-length allowed (lo == hi)
        outages.append(Outage(server, lo, hi))
    return outages


@given(outage_lists())
def test_merged_windows_are_disjoint_and_sorted(outages):
    plan = FaultPlan(outages=tuple(outages))
    per_server = {}
    for o in plan.outages:
        per_server.setdefault(o.server, []).append(o)
    for server, windows in per_server.items():
        assert windows == sorted(windows, key=lambda o: o.start)
        for prev, nxt in zip(windows, windows[1:]):
            # Strictly apart: touching windows would have been merged.
            assert prev.end < nxt.start


@given(outage_lists())
def test_merge_is_idempotent(outages):
    once = FaultPlan(outages=tuple(outages))
    twice = FaultPlan(outages=once.outages)
    assert once.outages == twice.outages


@given(outage_lists())
def test_merge_preserves_downtime_pointwise(outages):
    """Merging changes representation, never the down-set."""
    plan = FaultPlan(outages=tuple(outages))
    servers = {o.server for o in outages}
    # Probe on a finer grid than the generator's, hitting every boundary
    # and every midpoint between adjacent grid points.
    probes = [k / 8.0 for k in range(0, 81)]
    for s in servers:
        raw = [o for o in outages if o.server == s]
        for t in probes:
            raw_down = any(o.covers(t) for o in raw)
            assert plan.is_up(s, t) == (not raw_down)


@given(outage_lists())
def test_events_alternate_per_server(outages):
    plan = FaultPlan(outages=tuple(outages))
    per_server = {}
    for ev in plan.events():
        per_server.setdefault(ev.server, []).append(ev.kind)
    for kinds in per_server.values():
        # Merged windows emit strict crash/recover alternation.
        assert kinds[::2] == ["crash"] * len(kinds[::2])
        assert kinds[1::2] == ["recover"] * len(kinds[1::2])


@given(outage_lists())
def test_zero_length_outages_emit_no_events(outages):
    # A zero-width window that survives merging (isolated on its server)
    # must not surface as a crash/recover pair — the server never went
    # down for any measurable time.
    plan = FaultPlan(outages=tuple(outages))
    zero = {(o.server, o.start) for o in plan.outages if o.start == o.end}
    for ev in plan.events():
        assert (ev.server, ev.time) not in zero
