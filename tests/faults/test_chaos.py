"""Chaos harness: sweep seeded fault scenarios, assert invariants."""

import pytest

from repro import FaultPlan, Outage, SpeculativeCachingResilient, run_online_faulty
from repro.faults.chaos import (
    ChaosInvariantError,
    chaos_report,
    run_chaos_suite,
    scenario_plans,
)
from repro.workloads import poisson_zipf_instance

from ..conftest import make_instance


@pytest.fixture(scope="module")
def chaos_instance():
    return poisson_zipf_instance(n=120, m=6, rate=2.0, zipf_s=0.8, rng=77)


def factory(**kwargs):
    defaults = dict(replicas=2, max_retries=3)
    defaults.update(kwargs)
    return lambda: SpeculativeCachingResilient(**defaults)


class TestSuite:
    def test_twenty_seeded_scenarios_hold_invariants(self, chaos_instance):
        plans = scenario_plans(chaos_instance, scenarios=20, base_seed=0)
        assert len(plans) == 20
        outcomes = run_chaos_suite(chaos_instance, plans, factory())
        assert len(outcomes) == 20
        # The sweep must actually exercise faults, not vacuously pass.
        assert sum(o.crashes for o in outcomes) > 0

    def test_suite_is_reproducible(self, chaos_instance):
        plans = scenario_plans(chaos_instance, scenarios=5, base_seed=3)
        a = run_chaos_suite(chaos_instance, plans, factory())
        b = run_chaos_suite(chaos_instance, plans, factory())
        assert [o.row() for o in a] == [o.row() for o in b]

    def test_determinism_check_catches_nondeterminism(self, chaos_instance):
        class Flaky(SpeculativeCachingResilient):
            _tick = [0]

            def _setup(self):
                super()._setup()
                self._tick[0] += 1
                # Perturb the speculative window on every other run.
                if self._tick[0] % 2 == 0:
                    self.window_factor *= 1.5

        plans = scenario_plans(chaos_instance, scenarios=1, base_seed=0)
        with pytest.raises(ChaosInvariantError, match="replay diverged"):
            run_chaos_suite(chaos_instance, plans, lambda: Flaky(replicas=2))

    def test_invariants_catch_bad_penalty_ledger(self, chaos_instance):
        class Cheater(SpeculativeCachingResilient):
            def _drop(self, t, server):
                # Forget to charge the drop penalty.
                self.rec.counters["dropped_requests"] += 1
                if self.faults is not None:
                    self.faults.note_drop(t, server)

        # All-down window over a request guarantees a drop.
        t = float(chaos_instance.t[10])
        plan = FaultPlan(
            outages=tuple(
                Outage(s, t - 0.01, t + 0.5)
                for s in range(chaos_instance.num_servers)
            )
        )
        with pytest.raises(ChaosInvariantError, match="penalt"):
            run_chaos_suite(
                chaos_instance, [plan], lambda: Cheater(replicas=2)
            )


class TestBlackoutScenarios:
    def test_explicit_all_down_plan_reports_blackout(self):
        inst = make_instance(
            [1.0, 2.0, 3.0, 4.0, 5.0], [0, 1, 2, 0, 1], m=3
        )
        plan = FaultPlan(
            outages=tuple(Outage(s, 2.2, 2.8) for s in range(3))
        )
        outcomes = run_chaos_suite(inst, [plan], factory())
        assert outcomes[0].blackouts == 1
        assert outcomes[0].blackout_time == pytest.approx(0.6)

    def test_spare_server_scenarios_never_blackout(self, chaos_instance):
        plans = scenario_plans(
            chaos_instance,
            scenarios=8,
            base_seed=11,
            crash_rate=2.0,
            spare_server=0,
        )
        outcomes = run_chaos_suite(chaos_instance, plans, factory())
        assert all(o.blackouts == 0 for o in outcomes)
        assert all(o.dropped == 0 for o in outcomes)


class TestReport:
    def test_report_renders_one_row_per_scenario(self, chaos_instance):
        plans = scenario_plans(chaos_instance, scenarios=3, base_seed=5)
        outcomes = run_chaos_suite(
            chaos_instance, plans, factory(), check_determinism=False
        )
        text = chaos_report(outcomes)
        assert text.count("\n") >= 4  # header + rule + 3 rows
        for o in outcomes:
            assert str(o.seed) in text
