"""FaultContext runtime behaviour: draws, ledgers, observation."""

from repro.emulator import LatencyModel
from repro.faults import FaultContext, FaultPlan, Outage


def ctx(plan=None, m=4, latency=None):
    return FaultContext(plan or FaultPlan(), num_servers=m, latency=latency)


class TestLiveness:
    def test_mark_down_up_roundtrip(self):
        c = ctx()
        assert c.is_up(1)
        c.mark_down(1, 0.5)
        assert not c.is_up(1)
        assert c.up_servers() == [0, 2, 3]
        c.mark_up(1, 1.5)
        assert c.is_up(1)
        assert c.up_servers() == [0, 1, 2, 3]

    def test_events_logged(self):
        c = ctx()
        c.mark_down(2, 0.5)
        c.mark_up(2, 1.0)
        assert c.log == [("crash", 0.5, 2), ("recover", 1.0, 2)]


class TestTransferAttempts:
    def test_lossless_plan_always_succeeds_first_try(self):
        c = ctx()
        for _ in range(50):
            assert c.transfer_with_retries(0, 1, 1.0)
        assert all(entry[0] == "xfer-ok" for entry in c.log)
        assert all(entry[4] == 1 for entry in c.log)

    def test_down_source_fails_immediately(self):
        c = ctx()
        c.mark_down(0, 0.5)
        assert not c.transfer_with_retries(0, 1, 1.0, retries=5)
        assert c.log[-1][0] == "xfer-down"

    def test_down_destination_fails_unless_remote_read(self):
        c = ctx()
        c.mark_down(1, 0.5)
        assert not c.transfer_with_retries(0, 1, 1.0, retries=5)
        assert c.transfer_with_retries(0, 1, 1.0, retries=5, need_dst_up=False)

    def test_loss_draws_deterministic_per_seed(self):
        plan = FaultPlan(loss_rate=0.5, seed=42)
        a, b = ctx(plan), ctx(plan)
        outcomes_a = [a.transfer_with_retries(0, 1, float(t)) for t in range(40)]
        outcomes_b = [b.transfer_with_retries(0, 1, float(t)) for t in range(40)]
        assert outcomes_a == outcomes_b
        assert a.log == b.log
        assert a.retry_latency == b.retry_latency

    def test_retries_redraw_and_accrue_backoff(self):
        # loss_rate 0.9: with 8 retries most transfers eventually succeed,
        # and every lost attempt charges exponential backoff latency.
        plan = FaultPlan(loss_rate=0.9, seed=1)
        c = ctx(plan, latency=LatencyModel(retry_base=5.0))
        c.transfer_with_retries(0, 1, 1.0, retries=50)
        lost = [e for e in c.log if e[0] == "xfer-lost"]
        assert lost, "seed 1 at loss 0.9 must lose at least one attempt"
        expected = sum(5.0 * 2 ** (e[4] - 1) for e in lost)
        assert c.retry_latency == expected

    def test_exhausted_retries_fail(self):
        # With retries=0 and loss_rate 0.99 the first lost draw is final.
        plan = FaultPlan(loss_rate=0.99, seed=3)
        c = ctx(plan)
        results = [c.transfer_with_retries(0, 1, 1.0, retries=0) for _ in range(30)]
        assert not all(results)

    def test_slow_transfers_accrue_latency(self):
        plan = FaultPlan(slow_rate=1.0, slow_latency=7.0, seed=0)
        c = ctx(plan)
        assert c.transfer_with_retries(0, 1, 1.0)
        assert c.retry_latency == 7.0
        assert c.log[-1][0] == "xfer-slow"


class TestLedgers:
    def test_charge_accumulates_by_kind(self):
        c = ctx()
        c.charge("reseed", 1.0)
        c.charge("reseed", 1.0)
        c.charge("dropped", 2.5)
        assert c.penalties == {"reseed": 2.0, "dropped": 2.5}
        assert c.penalty_cost == 4.5

    def test_blackout_observation_windows(self):
        c = ctx()
        c.observe_copies(1, 0.0)
        c.observe_copies(0, 1.0)
        c.observe_copies(0, 1.5)
        c.observe_copies(2, 2.0)
        c.observe_copies(0, 3.0)
        c.close(4.0)
        assert c.blackouts == [(1.0, 2.0), (3.0, 4.0)]
        assert ("blackout", 1.0, 2.0) in c.log
        assert ("blackout", 3.0, 4.0) in c.log

    def test_reseed_and_drop_notes(self):
        c = ctx()
        c.note_reseed(1.0, 0)
        c.note_drop(2.0, 3)
        assert c.reseeds == [(1.0, 0)]
        assert ("reseed", 1.0, 0) in c.log
        assert ("drop", 2.0, 3) in c.log


class TestRetryBackoffModel:
    def test_exponential_schedule(self):
        m = LatencyModel(retry_base=5.0)
        assert m.retry_backoff(1) == 5.0
        assert m.retry_backoff(2) == 10.0
        assert m.retry_backoff(4) == 40.0

    def test_attempt_numbers_start_at_one(self):
        import pytest

        with pytest.raises(ValueError):
            LatencyModel().retry_backoff(0)
