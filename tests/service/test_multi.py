"""Multi-item service layer tests."""

import pytest

from repro import (
    CostModel,
    MultiItemInstance,
    MultiItemOnlineService,
    SpeculativeCaching,
    multi_item_workload,
    solve_offline,
    solve_offline_multi,
)
from repro.core.types import InvalidInstanceError
from repro.workloads import TraceRecord

from ..conftest import make_instance


def two_item_service():
    a = make_instance([1.0, 2.0], [1, 0], m=3)
    b = make_instance([0.5, 3.0], [2, 2], m=3)
    return MultiItemInstance({"a": a, "b": b})


class TestMultiItemInstance:
    def test_aggregates(self):
        svc = two_item_service()
        assert svc.num_items == 2
        assert svc.total_requests == 4
        assert svc.num_servers == 3

    def test_empty_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiItemInstance({})

    def test_fleet_mismatch_rejected(self):
        with pytest.raises(InvalidInstanceError, match="fleet"):
            MultiItemInstance(
                {"a": make_instance([1.0], [0], m=2), "b": make_instance([1.0], [0], m=3)}
            )

    def test_cost_mismatch_rejected(self):
        with pytest.raises(InvalidInstanceError, match="cost"):
            MultiItemInstance(
                {
                    "a": make_instance([1.0], [0], m=2, mu=1.0),
                    "b": make_instance([1.0], [0], m=2, mu=2.0),
                }
            )

    def test_from_records_splits_by_item(self):
        records = [
            TraceRecord(1.0, 0, item="x"),
            TraceRecord(2.0, 1, item="y"),
            TraceRecord(3.0, 1, item="x"),
        ]
        svc = MultiItemInstance.from_records(records, cost=CostModel())
        assert svc.num_items == 2
        assert svc.items["x"].n == 2

    def test_repr(self):
        assert "items=2" in repr(two_item_service())


class TestOfflineDecomposition:
    def test_total_is_sum_of_parts(self):
        svc = two_item_service()
        res = solve_offline_multi(svc)
        assert res.total_cost == pytest.approx(
            sum(solve_offline(inst).optimal_cost for inst in svc.items.values())
        )

    def test_breakdown_sorted_descending(self):
        svc = multi_item_workload(4, 120, 5, rng=0)
        res = solve_offline_multi(svc)
        costs = list(res.cost_breakdown().values())
        assert costs == sorted(costs, reverse=True)

    def test_lower_bound_below_cost(self):
        svc = multi_item_workload(3, 90, 4, rng=1)
        res = solve_offline_multi(svc)
        assert res.total_lower_bound <= res.total_cost + 1e-9


class TestOnlineService:
    def test_runs_each_item(self):
        svc = two_item_service()
        online = MultiItemOnlineService(lambda: SpeculativeCaching()).run(svc)
        assert set(online.runs) == {"a", "b"}

    def test_total_cost_and_counters(self):
        svc = multi_item_workload(3, 90, 4, rng=2)
        online = MultiItemOnlineService(lambda: SpeculativeCaching()).run(svc)
        assert online.total_cost == pytest.approx(
            sum(r.cost for r in online.runs.values())
        )
        assert online.counters()["transfers"] == sum(
            r.counters["transfers"] for r in online.runs.values()
        )

    def test_total_before_run_rejected(self):
        svc = two_item_service()
        with pytest.raises(RuntimeError):
            MultiItemOnlineService(lambda: SpeculativeCaching()).total_cost

    def test_service_level_competitive_bound(self):
        # Per-item 3-competitiveness aggregates to the service level.
        svc = multi_item_workload(4, 160, 5, rng=3)
        off = solve_offline_multi(svc)
        online = MultiItemOnlineService(lambda: SpeculativeCaching()).run(svc)
        assert online.total_cost <= 3.0 * off.total_cost + 1e-6


class TestWorkloadGenerator:
    def test_item_count_and_volume(self):
        svc = multi_item_workload(5, 200, 6, rng=4)
        assert svc.num_items == 5
        assert svc.total_requests == 200

    def test_total_requests_exact(self):
        # Regression: round(weights * n_total) with a max(1, .) clamp used
        # to overshoot the budget (num_items=7, n_total=100, rng=1 -> 101).
        # Largest-remainder apportionment makes n_total a hard invariant.
        assert multi_item_workload(7, 100, 5, rng=1).total_requests == 100
        for num_items, n_total, skew in (
            (3, 10, 1.0),
            (7, 100, 1.0),
            (13, 137, 0.5),
            (16, 16, 2.0),
            (9, 1000, 1.5),
        ):
            svc = multi_item_workload(
                num_items, n_total, 4, item_zipf=skew, rng=2
            )
            assert svc.total_requests == n_total
            assert svc.num_items == num_items

    def test_every_item_gets_a_request(self):
        # The floor survives apportionment even under heavy skew, where
        # tail quotas round to zero.
        svc = multi_item_workload(12, 14, 3, item_zipf=3.0, rng=9)
        assert svc.total_requests == 14
        assert all(inst.n >= 1 for inst in svc.items.values())

    def test_zipf_volume_concentration(self):
        svc = multi_item_workload(6, 600, 4, item_zipf=1.5, rng=5)
        sizes = sorted((inst.n for inst in svc.items.values()), reverse=True)
        assert sizes[0] > sizes[-1] * 2

    def test_parameters_validated(self):
        with pytest.raises(InvalidInstanceError):
            multi_item_workload(0, 10, 3)
        with pytest.raises(InvalidInstanceError):
            multi_item_workload(5, 3, 3)

    def test_deterministic(self):
        a = multi_item_workload(3, 60, 4, rng=6)
        b = multi_item_workload(3, 60, 4, rng=6)
        assert solve_offline_multi(a).total_cost == pytest.approx(
            solve_offline_multi(b).total_cost
        )
