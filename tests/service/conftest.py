"""Shared fixtures for the service-layer tests.

The ``/dev/shm`` leak scan used to live only in CI (and only after the
dedicated fabric tests); here it is an autouse fixture, so *every*
``tests/service/`` test asserts it leaked no shared-memory segments —
whichever path created them (pool close, GC finalizer, crash recovery,
the live server's verification pool).
"""

import gc
import glob
import os

import pytest

from repro.service.fabric import SEGMENT_PREFIX


def shm_segments() -> set:
    """Names of this prefix's segments visible in /dev/shm (Linux)."""
    return {
        os.path.basename(p) for p in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")
    }


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Fail any test that exits with segments it created still mapped."""
    before = shm_segments()
    yield
    # Segments released via weakref.finalize need a collection first —
    # a pool the test dropped without close() is sloppy but not a leak.
    gc.collect()
    leaked = shm_segments() - before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"
