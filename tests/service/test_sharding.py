"""Sharded parallel service-layer tests: plans and bit-identity."""

import pickle

import numpy as np
import pytest

from repro import (
    MultiItemOnlineService,
    SpeculativeCaching,
    multi_item_workload,
    solve_offline_multi,
)
from repro.kernels import solve_offline_frontier
from repro.service import SHARD_STRATEGIES, plan_shards
from repro.service.sharding import _pack_item, _solve_shard, _unpack_item

from ..conftest import make_instance


def _sized_items(sizes):
    """Items whose only interesting property is their request count."""
    return {
        name: make_instance([float(i) for i in range(1, n + 1)], [0] * n, m=1)
        for name, n in sizes.items()
    }


def _service(num_items=6, n_total=180, m=5, rng=11):
    return multi_item_workload(num_items, n_total, m, rng=rng)


class TestPlanShards:
    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_partition(self, strategy, shards):
        svc = _service()
        plan = plan_shards(svc.items, shards, strategy=strategy)
        flat = [name for shard in plan for name in shard]
        assert sorted(flat) == sorted(svc.items)  # exact partition
        assert all(shard for shard in plan)  # no empty shards
        assert len(plan) <= min(shards, svc.num_items)

    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_deterministic(self, strategy):
        svc = _service()
        a = plan_shards(svc.items, 3, strategy=strategy)
        b = plan_shards(svc.items, 3, strategy=strategy)
        assert a == b

    def test_size_strategy_balances(self):
        # Zipf-skewed volumes: LPT keeps the heaviest bin under the serial
        # total, and far under it when the head item doesn't dominate.
        svc = _service(num_items=8, n_total=400, rng=3)
        plan = plan_shards(svc.items, 4, strategy="size")
        loads = [sum(svc.items[k].n for k in shard) for shard in plan]
        assert max(loads) < svc.total_requests
        assert max(loads) >= svc.total_requests / 4  # pigeonhole sanity

    def test_hash_strategy_is_content_stable(self):
        # An item's placement depends only on its own name, never on which
        # other items share the service: dropping one item leaves every
        # other shard exactly as it was.
        svc = _service(num_items=6)
        full = plan_shards(svc.items, 3, strategy="hash")
        sub = {k: v for k, v in svc.items.items() if k != "item-5"}
        expected = [
            [n for n in shard if n != "item-5"] for shard in full
        ]
        assert plan_shards(sub, 3, strategy="hash") == [
            s for s in expected if s
        ]

    def test_size_strategy_golden_plan(self):
        # Golden pin for the heap-based LPT: (load, bin-index) heap pops
        # must reproduce the former linear-scan `loads.index(min(loads))`
        # placements exactly — lightest bin first, lowest index on load
        # ties.  Hand-traced: b,d (the 9s) seed bins 0,1; a,f stack on
        # bin 2; c takes the 9-vs-9 tie to bin 0; e lands on bin 1.
        items = _sized_items({"a": 5, "b": 9, "c": 3, "d": 9, "e": 2, "f": 5})
        assert plan_shards(items, 3, strategy="size") == [
            ["b", "c"],
            ["d", "e"],
            ["a", "f"],
        ]

    def test_size_strategy_golden_plan_all_ties(self):
        # Equal sizes: every placement is a load tie, so the plan is
        # decided purely by the bin-index tie-break.
        items = _sized_items({k: 4 for k in "abcde"})
        assert plan_shards(items, 2, strategy="size") == [
            ["a", "c", "e"],
            ["b", "d"],
        ]

    def test_invalid_arguments(self):
        svc = _service()
        with pytest.raises(ValueError, match="shards"):
            plan_shards(svc.items, 0)
        with pytest.raises(ValueError, match="strategy"):
            plan_shards(svc.items, 2, strategy="round-robin")

    def test_pack_unpack_roundtrip(self):
        svc = _service()
        name, inst = next(iter(svc.items.items()))
        name2, rebuilt = _unpack_item(_pack_item(name, inst))
        assert name2 == name
        assert np.array_equal(rebuilt.t, inst.t)
        assert np.array_equal(rebuilt.srv, inst.srv)
        assert np.array_equal(rebuilt.B, inst.B)
        assert rebuilt.cost == inst.cost
        assert rebuilt.origin == inst.origin


class TestShardWorkerImmutability:
    """Workers must never mutate solver results in place.

    The old workers stripped ``res.instance = None`` on the object the
    solver returned.  With the batched kernel, shard-mates' results are
    views into ONE stacked buffer per field, so in-place habits would
    corrupt neighbours; workers now strip a ``dataclasses.replace`` copy
    and batch results ship read-only.
    """

    @pytest.mark.parametrize("kernel", ["frontier", "batch"])
    def test_worker_results_match_fresh_solves(self, kernel):
        svc = _service(num_items=5, n_total=100)
        descs = [_pack_item(name, inst) for name, inst in svc.items.items()]
        out = _solve_shard(descs, kernel=kernel)
        assert [name for name, _ in out] == list(svc.items)
        for name, res in out:
            assert res.instance is None  # instances never cross the pool
            golden = solve_offline_frontier(svc.items[name])
            assert res.C.tobytes() == golden.C.tobytes()
            assert res.D.tobytes() == golden.D.tobytes()
            assert res.choice_d_k.tobytes() == golden.choice_d_k.tobytes()

    def test_batch_arrays_survive_shard_round_trip(self):
        svc = _service(num_items=5, n_total=100)
        descs = [_pack_item(name, inst) for name, inst in svc.items.items()]
        out = _solve_shard(descs, kernel="batch")
        # In-place mutation — the old stripping style — fails loudly
        # instead of silently corrupting shard-mates' views.
        with pytest.raises(ValueError):
            out[0][1].C[...] = 0.0
        # Pool pickle round-trip: every shard-mate's vectors come back
        # byte-identical even though they share stacked buffers.
        blobs = {name: pickle.dumps(res) for name, res in out}
        for name, blob in blobs.items():
            back = pickle.loads(blob)
            golden = solve_offline_frontier(svc.items[name])
            assert back.C.tobytes() == golden.C.tobytes()
            assert back.D.tobytes() == golden.D.tobytes()
            assert (
                back.served_by_cache.tobytes()
                == golden.served_by_cache.tobytes()
            )
            assert back.choice_d_tag.tobytes() == golden.choice_d_tag.tobytes()
            assert back.choice_d_k.tobytes() == golden.choice_d_k.tobytes()


class TestParallelBitIdentity:
    """Acceptance: parallel == serial for costs, breakdowns and counters."""

    @pytest.mark.parametrize("processes", [1, 2, 4])
    def test_offline_solve(self, processes):
        svc = _service()
        serial = solve_offline_multi(svc)
        par = solve_offline_multi(svc, processes=processes)
        assert list(par.per_item) == list(serial.per_item)  # dict order
        assert par.total_cost == serial.total_cost  # exact, not approx
        assert par.cost_breakdown() == serial.cost_breakdown()
        for name in serial.per_item:
            assert np.array_equal(par.per_item[name].C, serial.per_item[name].C)
            assert np.array_equal(
                np.nan_to_num(par.per_item[name].D, posinf=-1.0),
                np.nan_to_num(serial.per_item[name].D, posinf=-1.0),
            )
            assert par.per_item[name].instance is svc.items[name]

    @pytest.mark.parametrize("processes", [1, 2, 4])
    def test_online_service(self, processes):
        svc = _service(rng=12)
        serial = MultiItemOnlineService(SpeculativeCaching).run(svc)
        par = MultiItemOnlineService(SpeculativeCaching).run(
            svc, processes=processes
        )
        assert list(par.runs) == list(serial.runs)
        assert par.total_cost == serial.total_cost
        assert par.counters() == serial.counters()
        for name in serial.runs:
            assert par.runs[name].cost == serial.runs[name].cost
            assert par.runs[name].counters == serial.runs[name].counters

    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_shard_knobs_never_change_results(self, strategy):
        svc = _service(num_items=7, n_total=140)
        serial = solve_offline_multi(svc)
        par = solve_offline_multi(
            svc, processes=2, shards=5, shard_strategy=strategy
        )
        assert par.total_cost == serial.total_cost
        assert par.cost_breakdown() == serial.cost_breakdown()

    def test_lambda_factory_fails_fast_for_pools(self):
        svc = _service()
        with pytest.raises(ValueError, match="module-level"):
            MultiItemOnlineService(lambda: SpeculativeCaching()).run(
                svc, processes=2
            )

    def test_lambda_factory_fine_serially(self):
        svc = _service()
        online = MultiItemOnlineService(lambda: SpeculativeCaching()).run(svc)
        assert online.total_cost > 0
