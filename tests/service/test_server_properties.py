"""Property tests for the primitives the live server leans on.

* :func:`repro.service.multi._apportion_counts` — the workload
  generator's largest-remainder apportionment: sum-exactness, the
  floor-of-one guarantee, and permutation behaviour;
* :func:`repro.service.server.route_item` — item→shard routing: stable
  across runs/processes (pure content hash, pinned by goldens),
  in-range, and balanced within tolerance over many items.
"""

import collections
import zlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.multi import _apportion_counts
from repro.service.server import route_item

# -- strategies -------------------------------------------------------------

weights_st = st.lists(
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    min_size=1,
    max_size=32,
)

item_names_st = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=24,
    ),
    min_size=1,
    max_size=64,
    unique=True,
)


def normalized(raw):
    w = np.asarray(raw, dtype=float)
    return w / w.sum()


class TestApportionCounts:
    @given(weights_st, st.integers(min_value=0, max_value=2000))
    def test_sum_exactness_and_floor(self, raw, extra):
        w = normalized(raw)
        n_total = len(w) + extra  # callers guarantee n_total >= len(w)
        counts = _apportion_counts(w, n_total)
        assert int(counts.sum()) == n_total
        assert int(counts.min()) >= 1
        assert len(counts) == len(w)

    @given(weights_st, st.integers(min_value=0, max_value=500), st.randoms())
    def test_permutation_preserves_the_multiset(self, raw, extra, rnd):
        w = normalized(raw)
        n_total = len(w) + extra
        perm = list(range(len(w)))
        rnd.shuffle(perm)
        base = _apportion_counts(w, n_total)
        shuffled = _apportion_counts(w[perm], n_total)
        assert sorted(base.tolist()) == sorted(shuffled.tolist())

    @given(weights_st, st.integers(min_value=0, max_value=500), st.randoms())
    def test_permutation_equivariance_on_distinct_remainders(
        self, raw, extra, rnd
    ):
        # Exact equivariance (counts follow their weight through the
        # shuffle) holds whenever no tie-break fires: remainders pairwise
        # distinct and no zero-floor redistribution.
        w = normalized(raw)
        n_total = len(w) + extra
        quotas = w * n_total
        remainders = quotas - np.floor(quotas)
        if len(np.unique(remainders)) != len(w):
            return  # tie-break order is index-dependent by design
        base = _apportion_counts(w, n_total)
        if int(np.floor(quotas).min()) == 0 and int(base.min()) <= 1:
            return  # zero-floor funding picks argmax, index-dependent
        perm = list(range(len(w)))
        rnd.shuffle(perm)
        shuffled = _apportion_counts(w[perm], n_total)
        assert shuffled.tolist() == base[perm].tolist()

    def test_known_tie_break_is_deterministic(self):
        w = np.asarray([0.25, 0.25, 0.25, 0.25])
        assert _apportion_counts(w, 5).tolist() == [2, 1, 1, 1]
        assert _apportion_counts(w, 5).tolist() == [2, 1, 1, 1]


class TestRouteItem:
    @given(item_names_st, st.integers(min_value=1, max_value=64))
    def test_in_range_and_pure(self, names, shards):
        for name in names:
            first = route_item(name, shards)
            assert 0 <= first < shards
            assert route_item(name, shards) == first  # pure function

    def test_stable_across_runs_golden(self):
        # Pinned values: a salted hash (builtin ``hash``) or algorithm
        # change would break resume and cross-process agreement.
        assert route_item("item-0", 4) == zlib.crc32(b"item-0") % 4
        golden = {
            ("item-0", 4): 3,
            ("item-1", 4): 1,
            ("item-2", 4): 3,
            ("item-7", 8): 4,
            ("alpha", 3): 1,
            ("beta", 3): 1,
        }
        for (name, shards), expected in golden.items():
            assert route_item(name, shards) == expected, (name, shards)

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=10))
    def test_balanced_within_tolerance(self, shards, salt):
        # CRC32 over distinct names spreads close to uniform: with
        # 200*shards items no shard should be more than 2x the mean.
        n = 200 * shards
        loads = collections.Counter(
            route_item(f"item-{salt}-{i}", shards) for i in range(n)
        )
        assert set(loads) <= set(range(shards))
        mean = n / shards
        assert max(loads.values()) < 2.0 * mean
        assert min(loads.values()) > 0.25 * mean
