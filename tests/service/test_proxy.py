"""Chaos-proxy tests: seeded determinism, byte transparency, faults.

Property families:

* **determinism** — a :class:`NetworkFaultPlan` is a pure function of
  ``(seed, connection, message)``: equal plans produce bit-identical
  perturbation schedules, and every draw is stable across calls;
* **transparency** — a pass-through proxy changes nothing: the decision
  digest of a load driven through it equals the digest driven directly;
* **fault injection** — duplicated requests are absorbed by the
  server's exactly-once dedupe, torn writes are reassembled by client
  framing, mid-response resets are redriven, black-holes trip the
  client read timeout and recover, partitions refuse connections.

Digest comparisons drive closed-loop with ``concurrency == shards`` so
lanes align with shards (``crc32 % n`` on both sides) and the per-shard
apply order — hence the digest chain — is identical across runs.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import NetworkFaultPlan
from repro.service.loadgen import HttpClient, run_load, synthetic_events
from repro.service.proxy import ChaosProxy
from repro.service.server import CacheServer, ServerConfig


def scenario(coro_fn):
    return asyncio.run(coro_fn())


plans = st.builds(
    NetworkFaultPlan,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    latency=st.floats(0.0, 0.1, allow_nan=False),
    jitter=st.floats(0.0, 0.1, allow_nan=False),
    reset_rate=st.floats(0.0, 1.0, allow_nan=False),
    torn_rate=st.floats(0.0, 1.0, allow_nan=False),
    dup_rate=st.floats(0.0, 1.0, allow_nan=False),
    reorder_rate=st.floats(0.0, 1.0, allow_nan=False),
    reorder_hold=st.floats(0.0, 0.05, allow_nan=False),
)


class TestPlanDeterminism:
    @given(plan=plans)
    @settings(max_examples=50, deadline=None)
    def test_equal_seeds_equal_schedules(self, plan):
        """Same plan parameters => byte-identical perturbation sequence."""
        twin = NetworkFaultPlan(**{
            f: getattr(plan, f) for f in (
                "seed", "latency", "jitter", "reset_rate", "torn_rate",
                "dup_rate", "reorder_rate", "reorder_hold",
            )
        })
        assert plan.schedule(3, 4) == twin.schedule(3, 4)

    @given(plan=plans, conn=st.integers(0, 100), msg=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_perturbation_is_pure(self, plan, conn, msg):
        assert plan.perturbation(conn, msg) == plan.perturbation(conn, msg)

    def test_different_seeds_diverge(self):
        lossy = dict(reset_rate=0.5, torn_rate=0.5, dup_rate=0.5)
        a = NetworkFaultPlan(seed=1, **lossy)
        b = NetworkFaultPlan(seed=2, **lossy)
        assert a.schedule(4, 8) != b.schedule(4, 8)

    def test_passthrough_plan_is_clean(self):
        plan = NetworkFaultPlan()
        assert plan.passthrough
        for p in plan.schedule(3, 5):
            assert p.clean

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="reset_rate"):
            NetworkFaultPlan(reset_rate=1.5)
        with pytest.raises(ValueError, match="latency"):
            NetworkFaultPlan(latency=-0.1)
        with pytest.raises(ValueError, match="window"):
            NetworkFaultPlan(partition_windows=((2.0, 1.0),))


async def _digest_direct(events, tmp, shards=2):
    """Reference: the same events driven without a proxy."""
    server = CacheServer(
        ServerConfig(journal_dir=str(tmp), shards=shards, num_servers=6)
    )
    await server.start()
    res = await run_load(
        "127.0.0.1", server.port, events, concurrency=shards
    )
    await server.shutdown()
    return res.stats["digest"]


async def _digest_via_proxy(events, tmp, plan, shards=2, retries=64):
    server = CacheServer(
        ServerConfig(journal_dir=str(tmp), shards=shards, num_servers=6)
    )
    await server.start()
    proxy = ChaosProxy("127.0.0.1", server.port, plan=plan)
    await proxy.start()
    res = await run_load(
        "127.0.0.1", proxy.port, events, concurrency=shards,
        retries=retries, read_timeout=5.0,
    )
    await proxy.stop()
    await server.shutdown()
    return res, proxy.counters


class TestTransparency:
    def test_passthrough_digest_identical(self, tmp_path):
        """An empty plan relays verbatim: digests match, no faults fire."""
        events = synthetic_events(items=5, count=80, num_servers=6, seed=4)

        async def run():
            ref = await _digest_direct(events, tmp_path / "direct")
            res, counters = await _digest_via_proxy(
                events, tmp_path / "proxied", NetworkFaultPlan()
            )
            assert res.stats["digest"] == ref
            assert res.give_ups == 0
            for key in ("delayed", "duplicated", "resets", "torn", "held"):
                assert counters[key] == 0, (key, counters)
            assert counters["messages"] > 0

        scenario(run)


class TestFaultInjection:
    def test_duplicated_requests_are_deduped(self, tmp_path):
        """dup_rate=1: the server sees every request twice, applies once."""
        events = synthetic_events(items=4, count=60, num_servers=6, seed=5)

        async def run():
            ref = await _digest_direct(events, tmp_path / "direct")
            res, counters = await _digest_via_proxy(
                events, tmp_path / "proxied", NetworkFaultPlan(dup_rate=1.0)
            )
            assert res.stats["digest"] == ref
            assert counters["duplicated"] == counters["messages"]
            # Wire-level duplicates were answered from the decision
            # index, never re-applied.
            assert res.stats["processed"] == len(events)

        scenario(run)

    def test_torn_writes_reassemble(self, tmp_path):
        """torn_rate=1: byte-fragmented responses still frame correctly."""
        events = synthetic_events(items=4, count=60, num_servers=6, seed=6)

        async def run():
            ref = await _digest_direct(events, tmp_path / "direct")
            res, counters = await _digest_via_proxy(
                events, tmp_path / "proxied", NetworkFaultPlan(torn_rate=1.0)
            )
            assert res.stats["digest"] == ref
            assert res.give_ups == 0
            assert counters["torn"] == counters["messages"]

        scenario(run)

    def test_resets_are_redriven(self, tmp_path):
        """Mid-response resets: closed-loop reconnect + dedupe redrive."""
        events = synthetic_events(items=4, count=50, num_servers=6, seed=7)

        async def run():
            ref = await _digest_direct(events, tmp_path / "direct")
            res, counters = await _digest_via_proxy(
                events,
                tmp_path / "proxied",
                NetworkFaultPlan(seed=3, reset_rate=0.3),
                retries=256,
            )
            assert res.stats["digest"] == ref
            assert res.give_ups == 0
            assert counters["resets"] > 0

        scenario(run)

    def test_blackhole_trips_timeout_then_recovers(self, tmp_path):
        """Accept-then-stall: the client read timeout fires, the
        connection is dropped, and the redrive settles once the hole
        closes — the torn-send dedupe path, driven from the network."""
        events = synthetic_events(items=2, count=6, num_servers=4, seed=8)

        async def run():
            server = CacheServer(
                ServerConfig(journal_dir=str(tmp_path), shards=1, num_servers=4)
            )
            await server.start()
            proxy = ChaosProxy("127.0.0.1", server.port)
            await proxy.start()
            client = HttpClient("127.0.0.1", proxy.port, read_timeout=0.3)
            item, t, srv = events[0]
            body = {"item": item, "time": t, "server": srv}
            proxy.blackhole = True
            with pytest.raises(asyncio.TimeoutError):
                await client.request("POST", "/request", body)
            assert proxy.counters["stalled"] > 0
            proxy.blackhole = False
            # The stalled request may or may not have reached the server
            # before the timeout; the redrive settles either way.
            status, payload, _ = await client.request(
                "POST", "/request", body
            )
            assert status == 200 and payload["status"] == "done"
            await client.close()
            await proxy.stop()
            await server.shutdown()

        scenario(run)

    def test_partition_refuses_then_heals(self, tmp_path):
        events = synthetic_events(items=2, count=4, num_servers=4, seed=9)

        async def run():
            server = CacheServer(
                ServerConfig(journal_dir=str(tmp_path), shards=1, num_servers=4)
            )
            await server.start()
            proxy = ChaosProxy("127.0.0.1", server.port)
            await proxy.start()
            item, t, srv = events[0]
            body = {"item": item, "time": t, "server": srv}
            proxy.set_partition(True)
            client = HttpClient(
                "127.0.0.1", proxy.port, connect_timeout=1.0, read_timeout=1.0
            )
            with pytest.raises(
                (ConnectionError, OSError, asyncio.IncompleteReadError,
                 asyncio.TimeoutError)
            ):
                await client.request("POST", "/request", body)
            await client.close()
            assert proxy.counters["partition_drops"] >= 1
            proxy.set_partition(False)
            status, payload, _ = await client.request(
                "POST", "/request", body
            )
            assert status == 200 and payload["status"] == "done"
            await client.close()
            await proxy.stop()
            await server.shutdown()

        scenario(run)
