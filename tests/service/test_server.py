"""Live request-serving front-end tests.

Property families:

* **decision correctness** — wire decisions/costs equal the streaming
  DP's prefix-optimal choices computed independently;
* **exactly-once** — duplicate resends are answered from the decision
  index (never re-applied), stale non-duplicates are 409s;
* **degradation ladder** — watermark degrades, full queue sheds 429 +
  ``Retry-After``, drain/breaker sheds 503; deadline expiry yields a
  degraded-partial that later settles;
* **resume** — a restarted server replays its journals to the same
  merged decision digest as an uninterrupted run, including after a real
  subprocess SIGKILL mid-load (chaos suite).

Tests drive the server in-process inside one event loop per test
(``asyncio.run`` on a scenario coroutine) — no pytest-asyncio needed.
"""

import asyncio
import json

import pytest

from repro.core.types import CostModel
from repro.offline.streaming import StreamingSolver
from repro.service.loadgen import (
    HttpClient,
    run_load,
    synthetic_events,
)
from repro.service.server import CacheServer, ServerConfig, route_item


def scenario(coro_fn):
    """Run an async scenario to completion on a fresh loop."""
    return asyncio.run(coro_fn())


async def post_event(client, item, time, server, **extra):
    body = {"item": item, "time": time, "server": server, **extra}
    return await client.request("POST", "/request", body)


class TestDecisions:
    def test_wire_decisions_match_streaming_solver(self, tmp_path):
        events = synthetic_events(items=5, count=120, num_servers=6, seed=3)

        async def run():
            server = CacheServer(
                ServerConfig(journal_dir=str(tmp_path), shards=3, num_servers=6)
            )
            await server.start()
            client = HttpClient(server.config.host, server.port)
            responses = []
            for item, t, s in events:
                status, payload, _ = await post_event(client, item, t, s)
                assert status == 200, payload
                responses.append(payload)
            await client.close()
            await server.shutdown()
            return responses

        responses = scenario(run)
        # Recompute ground truth per item with independent solvers.
        solvers = {}
        cost = CostModel(mu=1.0, lam=1.0)
        for (item, t, s), payload in zip(events, responses):
            solver = solvers.setdefault(
                item, StreamingSolver(6, cost=cost, origin=0)
            )
            prev_t, prev_c = solver.t[-1], solver.C[-1]
            total = solver.append(t, s)
            via_transfer = prev_c + cost.mu * (t - prev_t) + cost.lam
            expected = "cache" if solver.D[-1] <= via_transfer else "transfer"
            assert payload["decision"] == expected, (item, t, payload)
            assert payload["cost"] == total - prev_c
            assert payload["item_cost"] == total
            assert payload["degraded"] is False

    def test_stats_gauges(self, tmp_path):
        events = synthetic_events(items=4, count=80, num_servers=6, seed=9)

        async def run():
            server = CacheServer(
                ServerConfig(journal_dir=str(tmp_path), shards=2, num_servers=6)
            )
            await server.start()
            await run_load(
                server.config.host, server.port, events, concurrency=2
            )
            client = HttpClient(server.config.host, server.port)
            _, stats, _ = await client.request("GET", "/stats")
            _, offline, _ = await client.request("GET", "/offline")
            await client.close()
            await server.shutdown()
            return stats, offline

        stats, offline = scenario(run)
        assert stats["processed"] == len(events)
        assert stats["requests"]["accepted"] == len(events)
        # Savings vs always-transfer is nonnegative: optimal <= baseline.
        assert stats["optimal_cost"] <= stats["baseline_cost"] + 1e-9
        assert offline["match"] is True
        assert offline["streaming_total"] == pytest.approx(
            stats["optimal_cost"]
        )


class TestExactlyOnce:
    def test_duplicate_resend_not_reapplied(self, tmp_path):
        async def run():
            server = CacheServer(
                ServerConfig(journal_dir=str(tmp_path), shards=2)
            )
            await server.start()
            client = HttpClient(server.config.host, server.port)
            _, first, _ = await post_event(client, "x", 1.0, 2)
            _, stats1, _ = await client.request("GET", "/stats")
            _, dup, _ = await post_event(client, "x", 1.0, 2)
            _, stats2, _ = await client.request("GET", "/stats")
            await client.close()
            await server.shutdown()
            return first, dup, stats1, stats2

        first, dup, stats1, stats2 = scenario(run)
        assert dup["duplicate"] is True
        assert dup["decision"] == first["decision"]
        assert dup["seq"] == first["seq"]
        # State did not advance: same digest, same processed count.
        assert stats2["digest"] == stats1["digest"]
        assert stats2["processed"] == stats1["processed"]
        assert stats2["requests"]["duplicates"] == 1

    def test_stale_event_conflicts(self, tmp_path):
        async def run():
            server = CacheServer(
                ServerConfig(journal_dir=str(tmp_path), shards=1)
            )
            await server.start()
            client = HttpClient(server.config.host, server.port)
            await post_event(client, "x", 5.0, 1)
            status, payload, _ = await post_event(client, "x", 3.0, 2)
            await client.close()
            await server.shutdown()
            return status, payload

        status, payload = scenario(run)
        assert status == 409
        assert "stale" in payload["error"]

    def test_bad_event_rejected(self, tmp_path):
        async def run():
            server = CacheServer(
                ServerConfig(journal_dir=str(tmp_path), shards=1)
            )
            await server.start()
            client = HttpClient(server.config.host, server.port)
            status, payload, _ = await client.request(
                "POST", "/request", {"item": "x"}
            )
            status2, _, _ = await client.request(
                "POST", "/request", {"item": "x", "time": 1.0, "server": 99}
            )
            await client.close()
            await server.shutdown()
            return status, payload, status2

        status, payload, status2 = scenario(run)
        assert status == 400
        # Out-of-range server is caught by the worker's input boundary.
        assert status2 == 400


class TestDegradationLadder:
    def test_queue_full_sheds_429_with_retry_after(self, tmp_path):
        async def run():
            config = ServerConfig(
                journal_dir=str(tmp_path),
                shards=1,
                queue_depth=2,
                degrade_watermark=1.0,
            )
            server = CacheServer(config)
            gate = asyncio.Event()
            server.shards[0].gate = gate  # hold the worker: queue stays full
            await server.start()
            client = HttpClient(server.config.host, server.port)
            # Fill the queue (responses pend), then overflow it.
            pending = [
                asyncio.create_task(
                    post_event(HttpClient(config.host, server.port), "x", t, 0)
                )
                for t in (1.0, 2.0)
            ]
            await asyncio.sleep(0.05)
            status, payload, headers = await post_event(client, "x", 3.0, 0)
            assert status == 429, payload
            assert "retry-after" in headers
            gate.set()
            done = await asyncio.gather(*pending)
            statuses = [d[0] for d in done]
            await client.close()
            await server.shutdown()
            return statuses, server.counters["shed_429"]

        statuses, shed = scenario(run)
        assert statuses == [200, 200]
        assert shed == 1

    def test_watermark_degrades_to_cheapest_feasible(self, tmp_path):
        async def run():
            config = ServerConfig(
                journal_dir=str(tmp_path),
                shards=1,
                queue_depth=4,
                degrade_watermark=0.5,
            )
            server = CacheServer(config)
            gate = asyncio.Event()
            server.shards[0].gate = gate
            await server.start()
            tasks = [
                asyncio.create_task(
                    post_event(HttpClient(config.host, server.port), "x", t, 0)
                )
                for t in (1.0, 2.0, 3.0, 4.0)
            ]
            await asyncio.sleep(0.05)
            gate.set()
            done = await asyncio.gather(*tasks)
            await server.shutdown()
            return [d[1] for d in done]

        payloads = scenario(run)
        flags = [p["degraded"] for p in payloads]
        # Depths 0,1 are below the watermark (2), depths 2,3 at/above it.
        assert flags == [False, False, True, True]
        for p in payloads[2:]:
            assert p["decision"] == "transfer"
            assert p["cost"] == 1.0  # lam: cheapest feasible, DP untouched

    def test_deadline_expiry_degraded_partial_then_settles(self, tmp_path):
        async def run():
            config = ServerConfig(journal_dir=str(tmp_path), shards=1)
            server = CacheServer(config)
            gate = asyncio.Event()
            server.shards[0].gate = gate
            await server.start()
            client = HttpClient(server.config.host, server.port)
            status, partial, _ = await post_event(
                client, "x", 1.0, 0, deadline_ms=50
            )
            gate.set()
            await asyncio.sleep(0.05)  # let the accepted event settle
            status2, settled, _ = await post_event(client, "x", 1.0, 0)
            await client.close()
            await server.shutdown()
            return status, partial, status2, settled, dict(server.counters)

        status, partial, status2, settled, counters = scenario(run)
        assert status == 200
        assert partial["degraded"] is True
        assert partial["status"] == "pending"
        assert partial["decision"] is None
        assert counters["deadline_expired"] == 1
        # The resend finds the event settled with a real decision.
        assert status2 == 200
        assert settled["status"] == "done"
        assert settled["duplicate"] is True
        assert settled["decision"] in ("cache", "transfer")

    def test_drain_sheds_503_and_health_endpoints(self, tmp_path):
        async def run():
            config = ServerConfig(journal_dir=str(tmp_path), shards=1)
            server = CacheServer(config)
            gate = asyncio.Event()
            server.shards[0].gate = gate
            await server.start()
            client = HttpClient(server.config.host, server.port)
            h_status, h_body, _ = await client.request("GET", "/healthz")
            r_status, r_body, _ = await client.request("GET", "/readyz")
            # Start draining while the worker is held: admission closes.
            drain = asyncio.create_task(server.shutdown())
            await asyncio.sleep(0.02)
            nr_status, nr_body, nr_headers = await client.request(
                "GET", "/readyz"
            )
            p_status, p_body, _ = await post_event(client, "x", 1.0, 0)
            await client.close()
            gate.set()
            await drain
            return (h_status, h_body, r_status, r_body,
                    nr_status, nr_headers, p_status, p_body)

        (h_status, h_body, r_status, r_body,
         nr_status, nr_headers, p_status, p_body) = scenario(run)
        assert (h_status, h_body["ok"]) == (200, True)
        assert (r_status, r_body["ready"]) == (200, True)
        assert nr_status == 503
        assert "retry-after" in nr_headers
        assert p_status == 503
        assert "draining" in p_body["error"]


class TestResume:
    def test_restart_resumes_to_identical_digest(self, tmp_path):
        events = synthetic_events(items=4, count=60, num_servers=6, seed=11)
        cut = 25
        dir_a = tmp_path / "killed"
        dir_b = tmp_path / "reference"

        async def run():
            config = ServerConfig(
                journal_dir=str(dir_a), shards=2, num_servers=6
            )
            # First life: events[:cut], then clean shutdown (the
            # subprocess SIGKILL variant is TestChaosKillResume).
            server = CacheServer(config)
            await server.start()
            await run_load(
                config.host, server.port, events[:cut], concurrency=1,
                fetch_stats=False,
            )
            await server.shutdown()

            resumed = CacheServer(
                ServerConfig(
                    journal_dir=str(dir_a), shards=2, num_servers=6,
                    resume=True,
                )
            )
            await resumed.start()
            assert resumed.replayed_events == cut
            await run_load(
                resumed.config.host, resumed.port, events[cut:],
                concurrency=1, fetch_stats=False,
            )
            client = HttpClient(resumed.config.host, resumed.port)
            _, stats_resumed, _ = await client.request("GET", "/stats")
            await client.close()
            await resumed.shutdown()

            reference = CacheServer(
                ServerConfig(journal_dir=str(dir_b), shards=2, num_servers=6)
            )
            await reference.start()
            await run_load(
                reference.config.host, reference.port, events,
                concurrency=1, fetch_stats=False,
            )
            client = HttpClient(reference.config.host, reference.port)
            _, stats_ref, _ = await client.request("GET", "/stats")
            await client.close()
            await reference.shutdown()
            return stats_resumed, stats_ref

        stats_resumed, stats_ref = scenario(run)
        assert stats_resumed["digest"] == stats_ref["digest"]
        assert stats_resumed["optimal_cost"] == stats_ref["optimal_cost"]
        assert [s["seq"] for s in stats_resumed["shards"]] == [
            s["seq"] for s in stats_ref["shards"]
        ]

    def test_resume_replays_degraded_events_identically(self, tmp_path):
        async def run():
            config = ServerConfig(
                journal_dir=str(tmp_path), shards=1, queue_depth=4,
                degrade_watermark=0.5,
            )
            server = CacheServer(config)
            gate = asyncio.Event()
            server.shards[0].gate = gate
            await server.start()
            tasks = [
                asyncio.create_task(
                    post_event(HttpClient(config.host, server.port), "x", t, 0)
                )
                for t in (1.0, 2.0, 3.0, 4.0)
            ]
            await asyncio.sleep(0.05)
            gate.set()
            await asyncio.gather(*tasks)
            digest = server.shards[0].digest
            degraded = server.shards[0].degraded
            await server.shutdown()

            resumed = CacheServer(
                ServerConfig(
                    journal_dir=str(tmp_path), shards=1, queue_depth=4,
                    degrade_watermark=0.5, resume=True,
                )
            )
            await resumed.start()
            out = (
                digest, degraded,
                resumed.shards[0].digest, resumed.shards[0].degraded,
            )
            await resumed.shutdown()
            return out

        digest, degraded, r_digest, r_degraded = scenario(run)
        assert degraded == 2  # the watermark kicked in for depths 2,3
        assert r_digest == digest
        assert r_degraded == degraded

    def test_resume_divergence_detected(self, tmp_path):
        from repro.runtime.supervisor import ResumeDivergenceError

        async def run():
            config = ServerConfig(journal_dir=str(tmp_path), shards=1)
            server = CacheServer(config)
            await server.start()
            client = HttpClient(config.host, server.port)
            for t in (1.0, 2.0, 3.0):
                await post_event(client, "x", t, 0)
            await client.close()
            await server.shutdown()

        scenario(run)
        # Corrupt one journaled event (same shape, different content).
        path = tmp_path / "shard-0.jsonl"
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        record["server"] = (record["server"] + 1) % 8
        lines[2] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")

        async def resume():
            server = CacheServer(
                ServerConfig(journal_dir=str(tmp_path), shards=1, resume=True)
            )
            await server.start()

        with pytest.raises(ResumeDivergenceError, match="diverged"):
            scenario(resume)


class TestChaosKillResume:
    def test_subprocess_sigkill_resumes_bit_identically(self, tmp_path):
        """Real SIGKILL against a server subprocess (2 seeded points)."""
        from repro.faults.chaos import server_kill_resume_suite

        events = synthetic_events(items=4, count=40, num_servers=6, seed=2)
        outcomes = server_kill_resume_suite(
            events,
            kill_points=2,
            base_seed=0,
            shards=2,
            num_servers=6,
            work_dir=str(tmp_path),
        )
        assert len(outcomes) == 2
        for o in outcomes:
            assert o.ok, o.violations
            assert o.digest == o.reference_digest
            assert o.replayed >= o.kill_seq


class TestRouting:
    def test_route_item_validates(self):
        with pytest.raises(ValueError, match="shards"):
            route_item("x", 0)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="queue_depth"):
            ServerConfig(queue_depth=0)
        with pytest.raises(ValueError, match="degrade_watermark"):
            ServerConfig(degrade_watermark=1.5)
        with pytest.raises(ValueError, match="resume"):
            ServerConfig(resume=True)
        with pytest.raises(ValueError):
            ServerConfig(deadline_ms=-1.0)


class TestDedupeWindow:
    """Bounded ``(item, time)`` dedupe map (memory-growth regression)."""

    def test_index_stays_bounded_and_evicted_resends_409(self, tmp_path):
        """Unbounded, the decision index grows with every event ever
        applied; with a window it tracks only the recent past, and a
        resend from beyond the window gets the stale-event 409."""
        count = 200

        async def run():
            server = CacheServer(
                ServerConfig(
                    journal_dir=str(tmp_path), shards=1, num_servers=4,
                    dedupe_window=10.0,
                )
            )
            await server.start()
            client = HttpClient(server.config.host, server.port)
            for i in range(1, count + 1):
                status, payload, _ = await post_event(
                    client, "hot", float(i), i % 4
                )
                assert status == 200, payload
            shard = server.shards[0]
            # Window [frontier - 10, frontier] holds ~11 live entries —
            # two orders of magnitude under the unbounded count.
            assert len(shard.index_by_key) <= 12
            assert len(shard.dedupe_order) == len(shard.index_by_key)
            assert shard.evicted_horizon >= count - 13

            # In-window resend: still answered from the decision index.
            status, payload, _ = await post_event(
                client, "hot", float(count), count % 4
            )
            assert status == 200 and payload["duplicate"]
            # Evicted resend: indistinguishable from stale, so 409.
            status, payload, _ = await post_event(client, "hot", 1.0, 1)
            assert status == 409
            assert "dedupe window" in payload["error"]
            await client.close()
            await server.shutdown()

        scenario(run)

    def test_window_does_not_change_decisions(self, tmp_path):
        """The window bounds the *dedupe* map only: decision streams and
        digests are identical with and without it."""
        events = synthetic_events(items=4, count=120, num_servers=6, seed=21)

        async def digest_with(window, jdir):
            server = CacheServer(
                ServerConfig(
                    journal_dir=str(jdir), shards=2, num_servers=6,
                    dedupe_window=window,
                )
            )
            await server.start()
            res = await run_load(
                server.config.host, server.port, events, concurrency=2
            )
            await server.shutdown()
            return res.stats["digest"]

        async def run():
            bounded = await digest_with(0.5, tmp_path / "bounded")
            unbounded = await digest_with(None, tmp_path / "unbounded")
            assert bounded == unbounded

        scenario(run)

    def test_window_validation(self):
        with pytest.raises(ValueError, match="dedupe_window"):
            ServerConfig(dedupe_window=0.0)
        with pytest.raises(ValueError, match="owned_shards"):
            ServerConfig(shards=2, owned_shards=(5,))
