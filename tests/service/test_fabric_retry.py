"""Retry-policy, circuit-breaker, and hardened-close tests for ServicePool.

Complements ``test_fabric.py`` (identity/lifecycle/basic crash
recovery) with the robustness layer: configurable retry/backoff around
worker crashes, the per-pool circuit breaker, and the
idempotent/race-safe bounded close that can never hang interpreter
shutdown on a wedged worker.
"""

import os
import signal
import threading
import time

import pytest

from repro import ServicePool, multi_item_workload, solve_offline_multi
from repro.service.fabric import CircuitOpenError, RetryPolicy, active_segments


def small_service(items=4, per_item=20, m=5, seed=3):
    return multi_item_workload(items, items * per_item, m, rng=seed)


def kill_workers(pool) -> None:
    for pid in list(pool._executor._processes):
        os.kill(pid, signal.SIGKILL)


def prime_executor(pool) -> None:
    """Spawn workers without going through the breaker-tracked call path."""
    executor = pool._ensure_executor()
    executor.submit(int).result()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="breaker_threshold"):
            RetryPolicy(breaker_threshold=0)
        with pytest.raises(ValueError, match="breaker_cooldown"):
            RetryPolicy(breaker_cooldown=-1.0)

    def test_delay_is_jittered_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.5)
        for attempt in range(8):
            cap = min(0.5, 0.1 * 2**attempt)
            for _ in range(16):
                d = policy.delay(attempt)
                assert 0.5 * cap <= d <= cap
        # No jitter: the delay is exactly the capped exponential.
        exact = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert exact.delay(0) == pytest.approx(0.1)
        assert exact.delay(2) == pytest.approx(0.4)
        assert exact.delay(10) == pytest.approx(0.5)


class TestRetryRecovery:
    def test_kill_recovers_with_configured_policy(self):
        svc = small_service()
        serial = solve_offline_multi(svc)
        policy = RetryPolicy(retries=2, base_delay=0.01, jitter=0.0)
        with ServicePool(2, retry=policy) as pool:
            pool.solve(svc)
            kill_workers(pool)
            par = pool.solve(svc)
        assert par.total_cost == serial.total_cost
        assert list(par.per_item) == list(serial.per_item)

    def test_zero_retries_fails_the_call_but_pool_survives(self):
        svc = small_service()
        serial = solve_offline_multi(svc)
        policy = RetryPolicy(retries=0, breaker_threshold=5)
        with ServicePool(2, retry=policy) as pool:
            pool.solve(svc)
            kill_workers(pool)
            with pytest.raises(RuntimeError, match="service pool broke"):
                pool.solve(svc)
            # The next call respawns a fresh executor and succeeds.
            assert pool.solve(svc).total_cost == serial.total_cost


class TestCircuitBreaker:
    def test_consecutive_failures_open_the_breaker(self):
        svc = small_service(items=2, per_item=8)
        policy = RetryPolicy(
            retries=0, breaker_threshold=2, breaker_cooldown=60.0
        )
        with ServicePool(1, retry=policy) as pool:
            for _ in range(2):
                prime_executor(pool)
                kill_workers(pool)
                with pytest.raises(RuntimeError, match="service pool broke"):
                    pool.solve(svc)
            # Threshold reached: calls now shed instead of respawning.
            with pytest.raises(CircuitOpenError, match="circuit open"):
                pool.solve(svc)

    def test_half_open_probe_closes_after_cooldown(self):
        svc = small_service(items=2, per_item=8)
        serial = solve_offline_multi(svc)
        policy = RetryPolicy(
            retries=0, breaker_threshold=1, breaker_cooldown=0.2
        )
        with ServicePool(1, retry=policy) as pool:
            prime_executor(pool)
            kill_workers(pool)
            with pytest.raises(RuntimeError, match="service pool broke"):
                pool.solve(svc)
            with pytest.raises(CircuitOpenError):
                pool.solve(svc)
            time.sleep(0.25)
            # Cooldown elapsed: the half-open probe runs and closes it.
            assert pool.solve(svc).total_cost == serial.total_cost
            assert pool._breaker.state == "closed"


class TestHardenedClose:
    def test_concurrent_close_race(self):
        svc = small_service(items=2, per_item=8)
        pool = ServicePool(2)
        pool.solve(svc)
        assert active_segments() != ()
        errors = []

        def closer():
            try:
                pool.close()
            except Exception as exc:  # noqa: BLE001 - the test's whole point
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert pool.closed
        assert active_segments() == ()

    def test_close_then_finalizer_then_close(self):
        # Explicit close + the weakref.finalize/atexit leg + another
        # explicit close: every ordering is a no-op after the first.
        svc = small_service(items=2, per_item=8)
        pool = ServicePool(1)
        pool.solve(svc)
        pool.close()
        pool._finalizer()  # what GC/interpreter-exit would run
        pool.close()
        assert pool.closed
        assert active_segments() == ()

    def test_gc_without_close_releases_everything(self):
        import gc

        svc = small_service(items=2, per_item=8)
        pool = ServicePool(1)
        pool.solve(svc)
        del pool
        gc.collect()
        assert active_segments() == ()

    def test_bounded_join_with_wedged_worker(self):
        # A worker stuck in a long sleep must not stall close(): the
        # bounded join expires, the worker is terminated, and close
        # returns promptly.
        pool = ServicePool(1, join_timeout=0.5)
        executor = pool._ensure_executor()
        executor.submit(int).result()  # spawn the worker
        executor.submit(time.sleep, 60)  # wedge it
        started = time.monotonic()
        pool.close()
        elapsed = time.monotonic() - started
        assert pool.closed
        assert elapsed < 10.0, f"close took {elapsed:.1f}s against a 0.5s join"
