"""Replicated-cluster tests: ownership, WAL handoff, live failover.

Property families:

* **ownership** — a replica answers only its owned shards: foreign
  shards get ``421`` with the owned set, so clients can re-route;
* **bit-identical handoff** — ``acquire_shard`` / ``POST
  /admin/acquire`` resumes a shard's per-shard WAL digest-verified:
  the acquiring replica's ``(seq, digest)`` equals the dead owner's;
* **routing map** — ``cluster.json`` parses, routes by the same
  ``crc32 % shards`` as the server, and survives torn reads;
* **live failover** — a real :class:`ReplicaSet` with a replica
  SIGKILLed under load converges to the same merged decision digest as
  an uninterrupted single server over all shards.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.service.cluster import ClusterConfig, ReplicaSet
from repro.service.loadgen import (
    ClusterClient,
    ClusterMap,
    HttpClient,
    cluster_stats,
    replay_cluster,
    run_load,
    synthetic_events,
)
from repro.service.server import CacheServer, ServerConfig, route_item


def scenario(coro_fn):
    return asyncio.run(coro_fn())


async def post_event(client, item, time, server, **extra):
    body = {"item": item, "time": time, "server": server, **extra}
    return await client.request("POST", "/request", body)


class TestClusterConfig:
    def test_round_robin_assignment(self):
        config = ClusterConfig(journal_dir="/tmp/x", replicas=3, shards=8)
        owned = config.assignment()
        assert owned == {0: [0, 3, 6], 1: [1, 4, 7], 2: [2, 5]}
        flat = sorted(s for shards in owned.values() for s in shards)
        assert flat == list(range(8))

    def test_validation(self):
        with pytest.raises(ValueError, match="replicas"):
            ClusterConfig(journal_dir="/tmp/x", replicas=0)
        with pytest.raises(ValueError, match="health_failures"):
            ClusterConfig(journal_dir="/tmp/x", health_failures=0)


class TestOwnership:
    def test_foreign_shard_gets_421(self, tmp_path):
        async def run():
            server = CacheServer(
                ServerConfig(
                    journal_dir=str(tmp_path),
                    shards=4,
                    owned_shards=(0, 2),
                    num_servers=4,
                )
            )
            await server.start()
            client = HttpClient(server.config.host, server.port)
            # Find one item routed to an owned shard, one to a foreign.
            owned_item = foreign_item = None
            for i in range(64):
                name = f"it{i}"
                if route_item(name, 4) in (0, 2):
                    owned_item = owned_item or name
                else:
                    foreign_item = foreign_item or name
            status, payload, _ = await post_event(client, owned_item, 1.0, 0)
            assert status == 200
            status, payload, _ = await post_event(client, foreign_item, 1.0, 0)
            assert status == 421
            assert payload["owned"] == [0, 2]
            status, ready, _ = await client.request("GET", "/readyz")
            assert ready["owned"] == [0, 2]
            await client.close()
            await server.shutdown()
            assert server.counters["misrouted"] == 1

        scenario(run)


class TestShardHandoff:
    def test_acquire_shard_resumes_wal_bit_identical(self, tmp_path):
        """Survivor resumes a dead owner's WAL to the same (seq, digest)."""
        events = synthetic_events(items=6, count=60, num_servers=4, seed=11)
        shard_of = {e[0]: route_item(e[0], 2) for e in events}

        async def run():
            # Owner serves shard 0 only, applies its share, dies cleanly.
            owner = CacheServer(
                ServerConfig(
                    journal_dir=str(tmp_path), shards=2,
                    owned_shards=(0,), num_servers=4,
                )
            )
            await owner.start()
            client = HttpClient(owner.config.host, owner.port)
            for item, t, s in events:
                if shard_of[item] == 0:
                    status, payload, _ = await post_event(client, item, t, s)
                    assert status == 200
            row = owner.shards[0].stats_row()
            await client.close()
            await owner.shutdown()

            # Survivor owns shard 1; acquiring shard 0 replays the WAL.
            survivor = CacheServer(
                ServerConfig(
                    journal_dir=str(tmp_path), shards=2,
                    owned_shards=(1,), num_servers=4,
                )
            )
            await survivor.start()
            client = HttpClient(survivor.config.host, survivor.port)
            status, payload, _ = await client.request(
                "POST", "/admin/acquire", {"shard": 0}
            )
            assert status == 200, payload
            assert payload["owned"] == [0, 1]
            assert payload["replayed"] == row["seq"]
            handed = survivor.shards[0].stats_row()
            assert (handed["seq"], handed["digest"]) == (
                row["seq"], row["digest"],
            )
            # Resends of applied events dedupe on the new owner, and the
            # shard keeps serving fresh events.
            first = next(e for e in events if shard_of[e[0]] == 0)
            status, payload, _ = await post_event(client, *first)
            assert status == 200 and payload["duplicate"]
            status, payload, _ = await post_event(
                client, first[0], first[1] + 1e6, 0
            )
            assert status == 200 and payload["status"] == "done"
            # Acquire is idempotent: re-acquiring an owned shard no-ops.
            status, payload, _ = await client.request(
                "POST", "/admin/acquire", {"shard": 0}
            )
            assert status == 200 and payload["replayed"] == 0
            status, payload, _ = await client.request(
                "POST", "/admin/acquire", {"shard": 7}
            )
            assert status == 400
            await client.close()
            await survivor.shutdown()

        scenario(run)


class TestClusterMap:
    def test_load_and_route(self, tmp_path):
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps({
            "epoch": 3,
            "num_shards": 2,
            "shards": {
                "0": {"host": "127.0.0.1", "port": 1001},
                "1": {"host": "127.0.0.1", "port": 1002},
            },
        }))
        cmap = ClusterMap.load(str(path))
        assert cmap.epoch == 3
        for item in ("a", "b", "xyz"):
            host, port = cmap.endpoint_for(item)
            assert port == 1001 + route_item(item, 2)

    def test_client_survives_missing_map(self, tmp_path):
        async def run():
            client = ClusterClient(str(tmp_path / "nope.json"))
            assert client.map is None
            client.refresh()
            assert client.map is None
            with pytest.raises(ConnectionError, match="no cluster map"):
                await client.send(("a", 1.0, 0))
            await client.close()

        scenario(run)


class TestReplicaSetFailover:
    def test_sigkill_under_load_is_bit_identical(self, tmp_path):
        """Kill a live replica mid-load: merged digest == single server."""
        events = synthetic_events(items=5, count=50, num_servers=6, seed=13)
        shards = 2

        async def reference():
            server = CacheServer(
                ServerConfig(
                    journal_dir=str(tmp_path / "ref"),
                    shards=shards, num_servers=6,
                )
            )
            await server.start()
            res = await run_load(
                "127.0.0.1", server.port, events, concurrency=shards
            )
            await server.shutdown()
            return res.stats

        ref = scenario(reference)

        rs = ReplicaSet(
            ClusterConfig(
                journal_dir=str(tmp_path / "cluster"),
                replicas=2,
                shards=shards,
                num_servers=6,
                sync=False,
            )
        )
        rs.start()
        try:
            assert sorted(rs.live_replicas()) == [0, 1]
            killed = threading.Event()

            def killer():
                time.sleep(0.3)
                rs.kill_replica(1)
                killed.set()

            threading.Thread(target=killer, daemon=True).start()
            res = replay_cluster(
                rs.map_path, events, concurrency=shards, retries=256
            )
            assert killed.wait(30)
            assert res.give_ups == 0
            assert res.stats["digest"] == ref["digest"]
            assert rs.live_replicas() == [0]
            assert len(rs.failover_log) == 1
            assert rs.failover_log[0]["replica"] == 1
            # Survivor now owns every shard; per-shard rows match the
            # reference exactly (nothing lost, duplicated, reordered).
            merged = asyncio.run(cluster_stats(rs.map_path))
            ref_rows = {r["shard"]: r for r in ref["shards"]}
            assert len(merged["shards"]) == shards
            for row in merged["shards"]:
                ref_row = ref_rows[row["shard"]]
                assert (row["seq"], row["digest"]) == (
                    ref_row["seq"], ref_row["digest"],
                )
        finally:
            rs.stop()
