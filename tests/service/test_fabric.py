"""Zero-copy shared-memory service fabric tests.

Three property families:

* **identity** — pool solves/serves are bit-identical to serial runs
  (key order, every result array, solver tags, counters);
* **lifecycle** — segments are unlinked on close()/context exit/error
  paths, and ``/dev/shm`` carries no ``reprosvc`` segments afterwards;
* **robustness** — a worker killed mid-task breaks only the in-flight
  call: the pool respawns its executor, the retried call succeeds, and
  no segments leak.
"""

import glob
import os
import signal

import numpy as np
import pytest

from repro import (
    MultiItemOnlineService,
    ServicePool,
    SpeculativeCaching,
    multi_item_workload,
    solve_offline_multi,
)
from repro.core.types import InvalidInstanceError
from repro.service.fabric import (
    SEGMENT_PREFIX,
    ServiceArena,
    active_segments,
)


def small_service(items=6, per_item=40, m=5, seed=3):
    return multi_item_workload(items, items * per_item, m, rng=seed)


def shm_segments():
    """Names of this prefix's segments visible in /dev/shm (Linux)."""
    return sorted(
        os.path.basename(p) for p in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")
    )


def assert_offline_identical(a, b):
    assert list(a.per_item) == list(b.per_item)
    for k in a.per_item:
        ra, rb = a.per_item[k], b.per_item[k]
        assert np.array_equal(ra.C, rb.C)
        assert np.array_equal(ra.D, rb.D)
        assert np.array_equal(ra.served_by_cache, rb.served_by_cache)
        assert np.array_equal(ra.choice_d_tag, rb.choice_d_tag)
        assert np.array_equal(ra.choice_d_k, rb.choice_d_k)
        assert ra.solver == rb.solver
    assert a.total_cost == b.total_cost


class TestSolveIdentity:
    def test_pool_solve_bit_identical_to_serial(self):
        svc = small_service()
        serial = solve_offline_multi(svc)
        with ServicePool(2) as pool:
            assert_offline_identical(serial, pool.solve(svc))

    def test_repeat_calls_hit_worker_caches(self):
        svc = small_service()
        serial = solve_offline_multi(svc)
        with ServicePool(2) as pool:
            first = pool.solve(svc)
            second = pool.solve(svc)  # cached arena + instances
        assert_offline_identical(serial, first)
        assert_offline_identical(serial, second)

    def test_transport_knob_routes_through_fabric(self):
        svc = small_service()
        serial = solve_offline_multi(svc)
        shm = solve_offline_multi(svc, processes=2, transport="shm")
        pickled = solve_offline_multi(svc, processes=2, transport="pickle")
        assert_offline_identical(serial, shm)
        assert_offline_identical(serial, pickled)
        assert active_segments() == ()

    def test_bad_transport_rejected(self):
        svc = small_service(items=2, per_item=5)
        with pytest.raises(ValueError, match="transport"):
            solve_offline_multi(svc, processes=2, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="transport"):
            MultiItemOnlineService(SpeculativeCaching).run(
                svc, processes=2, transport="carrier-pigeon"
            )

    def test_schedules_reconstruct_through_region(self):
        svc = small_service(items=3, per_item=30)
        serial = solve_offline_multi(svc)
        with ServicePool(2) as pool:
            par = pool.solve(svc)
        for k in svc.items:
            assert (
                par.per_item[k].schedule().transfers
                == serial.per_item[k].schedule().transfers
            )


class TestServeIdentity:
    def test_pool_serve_bit_identical_to_serial(self):
        svc = small_service()
        serial = MultiItemOnlineService(SpeculativeCaching).run(svc)
        with ServicePool(2) as pool:
            runs = pool.serve(svc, SpeculativeCaching)
        assert list(runs) == list(serial.runs)
        for k in runs:
            assert runs[k].cost == serial.runs[k].cost
            assert runs[k].counters == serial.runs[k].counters

    def test_run_with_pool_kwarg(self):
        svc = small_service()
        serial = MultiItemOnlineService(SpeculativeCaching).run(svc)
        with ServicePool(2) as pool:
            par = MultiItemOnlineService(SpeculativeCaching).run(svc, pool=pool)
        assert serial.total_cost == par.total_cost
        assert serial.counters() == par.counters()

    def test_unpicklable_factory_rejected_before_spawn(self):
        svc = small_service(items=2, per_item=5)
        with ServicePool(2) as pool:
            with pytest.raises(ValueError, match="process boundaries"):
                pool.serve(svc, lambda: SpeculativeCaching())


class TestPoolReuse:
    def test_interleaved_services_share_one_pool(self):
        svc_a = small_service(seed=1)
        svc_b = small_service(items=4, per_item=25, seed=2)
        serial_a = solve_offline_multi(svc_a)
        serial_b = solve_offline_multi(svc_b)
        with ServicePool(2) as pool:
            assert_offline_identical(serial_a, pool.solve(svc_a))
            assert_offline_identical(serial_b, pool.solve(svc_b))
            assert_offline_identical(serial_a, pool.solve(svc_a))
            # two live services -> one arena + one result region each
            assert len(active_segments()) == 4
        assert active_segments() == ()

    def test_garbage_collected_service_releases_segments(self):
        with ServicePool(1) as pool:
            svc = small_service(items=2, per_item=10)
            pool.solve(svc)
            assert len(active_segments()) == 2
            del svc
            import gc

            gc.collect()
            assert active_segments() == ()


class TestLifecycle:
    def test_close_is_idempotent_and_unlinks(self):
        svc = small_service(items=2, per_item=10)
        pool = ServicePool(2)
        pool.solve(svc)
        assert active_segments() != ()
        pool.close()
        pool.close()
        assert pool.closed
        assert active_segments() == ()
        assert shm_segments() == []
        with pytest.raises(RuntimeError, match="closed"):
            pool.solve(svc)

    def test_pack_error_path_unlinks(self):
        class Broken:
            # items mapping whose second value explodes mid-pack
            @property
            def items(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            ServiceArena.pack(Broken())
        assert active_segments() == ()

    def test_invalid_processes(self):
        with pytest.raises(ValueError, match="processes"):
            ServicePool(0)


class TestCrashRecovery:
    def test_worker_kill_recovers_and_leaks_nothing(self):
        svc = small_service()
        serial = solve_offline_multi(svc)
        with ServicePool(2) as pool:
            assert_offline_identical(serial, pool.solve(svc))
            # Kill every live worker mid-pool; the next call must respawn
            # the executor, retry, and still match serial bit-for-bit.
            for pid in list(pool._executor._processes):
                os.kill(pid, signal.SIGKILL)
            assert_offline_identical(serial, pool.solve(svc))
            segments_during = set(active_segments())
        assert active_segments() == ()
        assert shm_segments() == []
        assert segments_during  # the arena survived the crash

    def test_worker_kill_during_serve(self):
        svc = small_service()
        serial = MultiItemOnlineService(SpeculativeCaching).run(svc)
        with ServicePool(2) as pool:
            pool.solve(svc)
            for pid in list(pool._executor._processes):
                os.kill(pid, signal.SIGKILL)
            runs = pool.serve(svc, SpeculativeCaching)
        assert sum(r.cost for r in runs.values()) == serial.total_cost
        assert shm_segments() == []
