"""Cluster substrate tests."""

import numpy as np
import pytest

from repro import CostModel
from repro.network import Cluster, Server


class TestConstruction:
    def test_basic(self):
        c = Cluster(4)
        assert c.num_servers == 4 and c.origin == 0
        assert not c.has_layout

    def test_positions_length_checked(self):
        with pytest.raises(ValueError, match="positions"):
            Cluster(3, positions=[(0, 0)])

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_bad_origin_rejected(self):
        with pytest.raises(ValueError, match="origin"):
            Cluster(2, origin=5)

    def test_grid_layout(self):
        c = Cluster.grid(2, 3, spacing=2.0)
        assert c.num_servers == 6 and c.has_layout
        assert c.servers[0].position == (0.0, 0.0)
        assert c.servers[5].position == (4.0, 2.0)

    def test_random_layout_deterministic(self):
        a = Cluster.random_layout(5, rng=np.random.default_rng(1))
        b = Cluster.random_layout(5, rng=np.random.default_rng(1))
        assert np.allclose(a.positions(), b.positions())


class TestQueries:
    def test_nearest_server(self):
        c = Cluster.grid(1, 3, spacing=1.0)
        assert c.nearest_server((0.1, 0.0)) == 0
        assert c.nearest_server((1.9, 0.0)) == 2

    def test_nearest_servers_vectorised(self):
        c = Cluster.grid(1, 3)
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        assert list(c.nearest_servers(pts)) == [0, 2]

    def test_positions_require_layout(self):
        with pytest.raises(ValueError, match="layout"):
            Cluster(2).positions()

    def test_heterogeneous_model_lift(self):
        c = Cluster(3, cost=CostModel(mu=2.0, lam=3.0))
        h = c.heterogeneous_model()
        assert h.as_homogeneous() == CostModel(mu=2.0, lam=3.0)

    def test_server_label(self):
        assert Server(2).label() == "s2"
        assert Server(2, name="edge-a").label() == "edge-a"

    def test_repr(self):
        assert "m=3" in repr(Cluster(3))
