"""Heterogeneous cost model tests."""

import math

import numpy as np
import pytest

from repro import CostModel
from repro.network import HeterogeneousCostModel, homogeneous_as_heterogeneous


def het(m=3, mu=1.0, lam=2.0):
    return homogeneous_as_heterogeneous(CostModel(mu=mu, lam=lam), m)


class TestConstruction:
    def test_lift_from_homogeneous(self):
        h = het()
        assert h.num_servers == 3
        assert np.all(h.mu == 1.0)
        assert h.lam[0, 1] == 2.0 and h.lam[1, 1] == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            HeterogeneousCostModel(mu=np.ones(3), lam=np.zeros((2, 2)))

    def test_mu_must_be_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            HeterogeneousCostModel(mu=np.ones((2, 2)), lam=np.zeros((2, 2)))

    def test_nonpositive_mu_rejected(self):
        lam = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="positive"):
            HeterogeneousCostModel(mu=np.array([1.0, 0.0]), lam=lam)

    def test_nonzero_diagonal_rejected(self):
        lam = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            HeterogeneousCostModel(mu=np.ones(2), lam=lam)

    def test_nonpositive_offdiagonal_rejected(self):
        lam = np.array([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="transfer costs"):
            HeterogeneousCostModel(mu=np.ones(2), lam=lam)


class TestQueries:
    def test_is_homogeneous_true(self):
        assert het().is_homogeneous()

    def test_is_homogeneous_false(self):
        h = het()
        mu = h.mu.copy()
        mu[0] = 9.0
        assert not HeterogeneousCostModel(mu=mu, lam=h.lam).is_homogeneous()

    def test_roundtrip_to_homogeneous(self):
        back = het(mu=1.5, lam=2.5).as_homogeneous()
        assert back.mu == 1.5 and back.lam == 2.5

    def test_as_homogeneous_rejects_heterogeneous(self):
        h = het()
        mu = h.mu.copy()
        mu[0] = 9.0
        with pytest.raises(ValueError, match="not homogeneous"):
            HeterogeneousCostModel(mu=mu, lam=h.lam).as_homogeneous()

    def test_check_size(self):
        with pytest.raises(ValueError, match="covers"):
            het(m=3).check(4)

    def test_single_server_fleet(self):
        h = homogeneous_as_heterogeneous(CostModel(), 1)
        assert h.is_homogeneous()
        assert h.as_homogeneous().mu == 1.0

    def test_beta_passthrough(self):
        h = homogeneous_as_heterogeneous(CostModel(beta=5.0), 2)
        assert h.beta == 5.0
        assert math.isinf(het().beta)
