"""Cross-process determinism: a fresh interpreter reproduces a run.

The determinism claim behind the whole runtime layer — journal digests,
snapshot resume, chaos replay — is that a (policy config, instance,
plan) triple fully determines the run, with no hidden process state
(hash randomisation, import order, RNG defaults) leaking in.  The only
honest way to test that is to actually re-execute in a fresh interpreter
and compare the canonical JSON of cost, schedule, blackouts and fault
log byte-for-byte.
"""

import os
import subprocess
import sys
from pathlib import Path

#: The scenario, shared verbatim by the in-process and fresh-process
#: runs: defines ``summary_json()`` returning the canonical run summary.
_SCENARIO = """
from repro import FaultPlan, SpeculativeCachingResilient
from repro.sim.engine import run_online_faulty
from repro.workloads import poisson_zipf_instance
from repro.runtime.digest import canonical_json

def summary_json():
    inst = poisson_zipf_instance(n=40, m=4, rate=2.0, zipf_s=0.8, rng=9)
    plan = FaultPlan.generate(
        seed=4,
        num_servers=4,
        start=float(inst.t[0]),
        end=float(inst.t[-1]),
        crash_rate=2.0,
        mean_outage=0.15,
        loss_rate=0.3,
    )
    res = run_online_faulty(
        SpeculativeCachingResilient(replicas=2, max_retries=2), inst, plan
    )
    canon = res.schedule.canonical()
    return canonical_json(
        {
            "cost": res.cost,
            "intervals": [[iv.server, iv.start, iv.end] for iv in canon.intervals],
            "transfers": [[tr.src, tr.dst, tr.time] for tr in canon.transfers],
            "blackouts": [list(b) for b in res.blackouts],
            "penalties": res.penalties,
            "fault_log": [list(e) for e in res.fault_log],
            "retry_latency": res.retry_latency,
        }
    )
"""


def _in_process():
    ns = {}
    exec(_SCENARIO, ns)
    return ns["summary_json"]()


def _fresh_process():
    repo = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")
    out = subprocess.run(
        [sys.executable, "-c", _SCENARIO + "\nprint(summary_json())"],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(repo),
        timeout=120,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


def test_fresh_interpreter_reproduces_the_run_byte_for_byte():
    assert _in_process() == _fresh_process()


def test_in_process_rerun_is_identical_too():
    assert _in_process() == _in_process()
