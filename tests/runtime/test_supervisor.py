"""Supervisor: budgets, degraded partials, journaling, basic resume."""

import pytest

from repro import FaultPlan, SpeculativeCaching, SpeculativeCachingResilient
from repro.faults.chaos import _results_equal
from repro.runtime import RunBudget, Supervisor
from repro.schedule import validate_schedule
from repro.sim.engine import run_online_faulty
from repro.workloads import poisson_zipf_instance


@pytest.fixture(scope="module")
def scenario():
    inst = poisson_zipf_instance(n=50, m=4, rate=2.0, zipf_s=0.8, rng=21)
    plan = FaultPlan.generate(
        seed=13,
        num_servers=4,
        start=float(inst.t[0]),
        end=float(inst.t[-1]),
        crash_rate=2.0,
        mean_outage=0.15,
        loss_rate=0.3,
    )
    return inst, plan


def factory():
    return SpeculativeCachingResilient(replicas=2, max_retries=2)


def supervisor(scenario, **kwargs):
    inst, plan = scenario
    return Supervisor(factory, inst, plan=plan, **kwargs)


class TestBudget:
    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            RunBudget(max_events=-1)
        with pytest.raises(ValueError):
            RunBudget(max_seconds=-0.5)

    def test_snapshot_every_validated(self, scenario):
        with pytest.raises(ValueError, match="snapshot_every"):
            supervisor(scenario, snapshot_every=0)


class TestCompletedRun:
    def test_unbudgeted_run_matches_monolithic_driver(self, scenario):
        inst, plan = scenario
        reference = run_online_faulty(factory(), inst, plan)
        run = supervisor(scenario).run()
        assert run.completed and not run.degraded
        assert run.completion_fraction == 1.0
        assert run.events_delivered == run.events_total
        assert _results_equal(run.result, reference)

    def test_journal_covers_every_sequence_number(self, scenario):
        run = supervisor(scenario).run()
        # begin + one record per event + finish
        assert run.last_seq == run.events_total + 1
        assert len(run.digests) == run.events_total + 2

    def test_plain_run_without_faults(self, scenario):
        inst, _ = scenario
        sup = Supervisor(SpeculativeCaching, inst)
        run = sup.run()
        assert run.completed
        validate_schedule(run.result.schedule, inst)


class TestDeadlineDegradation:
    def test_event_deadline_returns_degraded_partial(self, scenario):
        inst, plan = scenario
        run = supervisor(scenario).run(RunBudget(max_events=15))
        assert run.degraded and not run.completed
        assert run.events_delivered == 15
        assert 0.0 < run.completion_fraction < 1.0
        assert run.completion_fraction == 15 / run.events_total
        # The prefix schedule validates up to the last delivered instant.
        validate_schedule(
            run.result.schedule,
            inst,
            allowed_gaps=run.result.allowed_gaps(),
            upto=run.last_time,
            upto_request=run.requests_delivered,
        )

    def test_deadline_never_raises_for_any_kill_point(self, scenario):
        inst, plan = scenario
        total = supervisor(scenario).run().events_total
        for kill in (1, total // 4, total // 2, total - 1):
            run = supervisor(scenario).run(RunBudget(max_events=kill))
            assert run.degraded
            assert run.events_delivered == kill
            validate_schedule(
                run.result.schedule,
                inst,
                allowed_gaps=run.result.allowed_gaps(),
                upto=run.last_time,
                upto_request=run.requests_delivered,
            )

    def test_zero_event_budget_delivers_nothing(self, scenario):
        run = supervisor(scenario).run(RunBudget(max_events=0))
        assert run.degraded
        assert run.events_delivered == 0
        inst, _ = scenario
        assert run.last_time == float(inst.t[0])

    def test_wall_clock_deadline_pauses(self, scenario):
        # A zero-second allowance expires before the first step.
        run = supervisor(scenario).run(RunBudget(max_seconds=0.0))
        assert run.degraded
        assert run.events_delivered == 0

    def test_wall_clock_affects_where_not_what(self, scenario):
        # Pausing on wall-clock then resuming yields the same final
        # result as never pausing: time budgets shape execution, not
        # simulated outcomes.
        reference = supervisor(scenario).run()
        sup = supervisor(scenario)
        run = sup.run(RunBudget(max_seconds=0.0))
        while not run.completed:
            run = sup.resume(RunBudget(max_events=run.events_delivered + 10))
        assert _results_equal(run.result, reference.result)
        assert run.digests == reference.digests


class TestResume:
    def test_resume_without_state_raises(self, scenario):
        with pytest.raises(RuntimeError, match="nothing to resume"):
            supervisor(scenario).resume()

    def test_in_memory_kill_resume_is_bit_identical(self, scenario):
        reference = supervisor(scenario).run()
        sup = supervisor(scenario)
        partial = sup.run(RunBudget(max_events=20))
        assert partial.degraded
        resumed = sup.resume()
        assert resumed.completed
        assert resumed.resumed_from_seq == 20  # checkpoint-on-pause default
        assert _results_equal(resumed.result, reference.result)
        assert resumed.digests == reference.digests

    def test_multi_slice_execution(self, scenario):
        reference = supervisor(scenario).run()
        sup = supervisor(scenario)
        run = sup.run(RunBudget(max_events=10))
        slices = 1
        while not run.completed:
            run = sup.resume(RunBudget(max_events=run.events_delivered + 10))
            slices += 1
        assert slices >= 3
        assert _results_equal(run.result, reference.result)

    def test_file_backed_resume_from_periodic_checkpoint(self, scenario, tmp_path):
        # checkpoint_on_pause=False leaves the last periodic snapshot as
        # the resume point — the state a hard kill leaves behind — so the
        # journal tail must be genuinely re-executed and digest-verified.
        reference = supervisor(scenario).run()
        paths = dict(
            journal_path=str(tmp_path / "run.jsonl"),
            snapshot_path=str(tmp_path / "run.ckpt"),
        )
        sup = supervisor(
            scenario, snapshot_every=8, checkpoint_on_pause=False, **paths
        )
        partial = sup.run(RunBudget(max_events=13))
        assert partial.degraded

        # A fresh supervisor object (as after a process restart) resumes
        # purely from the on-disk snapshot + journal.
        fresh = supervisor(
            scenario, snapshot_every=8, checkpoint_on_pause=False, **paths
        )
        resumed = fresh.resume()
        assert resumed.completed
        assert resumed.resumed_from_seq == 8  # last periodic boundary
        assert _results_equal(resumed.result, reference.result)
        assert resumed.digests == reference.digests
