"""Checkpoints: capture/restore fidelity and integrity checking."""

import pytest

from repro import FaultPlan, SpeculativeCaching, SpeculativeCachingResilient
from repro.runtime.digest import state_digest
from repro.runtime.snapshot import RunSnapshot, SnapshotIntegrityError
from repro.sim.engine import ReplayDriver
from repro.workloads import poisson_zipf_instance


@pytest.fixture(scope="module")
def scenario():
    inst = poisson_zipf_instance(n=40, m=4, rate=2.0, zipf_s=0.8, rng=9)
    plan = FaultPlan.generate(
        seed=4,
        num_servers=4,
        start=float(inst.t[0]),
        end=float(inst.t[-1]),
        crash_rate=2.0,
        mean_outage=0.15,
        loss_rate=0.3,
    )
    return inst, plan


def _driver(scenario):
    inst, plan = scenario
    return ReplayDriver(
        SpeculativeCachingResilient(replicas=2, max_retries=2), inst, plan=plan
    )


class TestCaptureRestore:
    def test_restored_driver_matches_digest_and_position(self, scenario):
        driver = _driver(scenario)
        for _ in range(7):
            driver.step()
        snap = RunSnapshot.capture(driver)
        assert snap.seq == 7
        restored = snap.restore()
        assert restored.pos == 7
        assert state_digest(restored) == state_digest(driver)

    def test_restored_driver_finishes_identically(self, scenario):
        reference = _driver(scenario)
        while not reference.done:
            reference.step()
        ref = reference.finish()

        driver = _driver(scenario)
        for _ in range(11):
            driver.step()
        restored = RunSnapshot.capture(driver).restore()
        while not restored.done:
            restored.step()
        res = restored.finish()
        assert res.cost == ref.cost
        assert res.schedule == ref.schedule
        assert res.fault_log == ref.fault_log
        assert res.blackouts == ref.blackouts

    def test_cannot_snapshot_finalised_run(self, scenario):
        driver = _driver(scenario)
        while not driver.done:
            driver.step()
        driver.finish()
        with pytest.raises(RuntimeError, match="finalised"):
            RunSnapshot.capture(driver)

    def test_plain_run_without_faults_snapshots_too(self, scenario):
        inst, _ = scenario
        driver = ReplayDriver(SpeculativeCaching(), inst)
        for _ in range(5):
            driver.step()
        restored = RunSnapshot.capture(driver).restore()
        assert state_digest(restored) == state_digest(driver)


class TestIntegrity:
    def test_tampered_blob_raises(self, scenario):
        driver = _driver(scenario)
        driver.step()
        snap = RunSnapshot.capture(driver)
        other = _driver(scenario)  # fresh driver, pos 0: different state
        bad = RunSnapshot(seq=snap.seq, digest=snap.digest, blob=RunSnapshot.capture(other).blob)
        with pytest.raises(SnapshotIntegrityError):
            bad.restore()


class TestPersistence:
    def test_save_load_roundtrip(self, scenario, tmp_path):
        driver = _driver(scenario)
        for _ in range(9):
            driver.step()
        snap = RunSnapshot.capture(driver)
        path = str(tmp_path / "ckpt.bin")
        snap.save(path)
        back = RunSnapshot.load(path)
        assert back.seq == snap.seq
        assert back.digest == snap.digest
        assert state_digest(back.restore()) == snap.digest
        assert back.size_bytes() == snap.size_bytes() > 0

    def test_save_is_atomic_no_tmp_left_behind(self, scenario, tmp_path):
        driver = _driver(scenario)
        driver.step()
        path = tmp_path / "ckpt.bin"
        RunSnapshot.capture(driver).save(str(path))
        assert path.exists()
        assert not (tmp_path / "ckpt.bin.tmp").exists()

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        import pickle

        path.write_bytes(pickle.dumps({"format": "something-else"}))
        with pytest.raises(SnapshotIntegrityError, match="not a"):
            RunSnapshot.load(str(path))
