"""Write-ahead journal: append/load round-trips and WAL recovery."""

import json

import pytest

from repro.runtime.journal import JournalCorruptError, RunJournal


def _rec(seq, **extra):
    base = {"seq": seq, "kind": "request", "time": float(seq), "digest": f"d{seq}"}
    base.update(extra)
    return base


class TestInMemory:
    def test_appends_and_queries(self):
        j = RunJournal.open_fresh(None)
        for k in range(5):
            assert j.append(_rec(k)) == k
        assert len(j) == 5
        assert j.last_seq == 4
        assert j.record_at(3)["time"] == 3.0
        assert j.record_at(99) is None
        assert j.digests() == [f"d{k}" for k in range(5)]

    def test_rejects_sequence_gap(self):
        j = RunJournal.open_fresh(None)
        j.append(_rec(0))
        with pytest.raises(JournalCorruptError, match="non-contiguous"):
            j.append(_rec(2))

    def test_rejects_missing_digest(self):
        j = RunJournal.open_fresh(None)
        rec = _rec(0)
        del rec["digest"]
        with pytest.raises(JournalCorruptError, match="digest"):
            j.append(rec)


class TestFileBacked:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        j = RunJournal.open_fresh(path)
        for k in range(7):
            j.append(_rec(k))
        j.close()
        back = RunJournal.load(path)
        assert back.records == j.records

    def test_open_fresh_truncates(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        j = RunJournal.open_fresh(path)
        j.append(_rec(0))
        j.close()
        j2 = RunJournal.open_fresh(path)
        j2.append(_rec(0, digest="other"))
        j2.close()
        assert RunJournal.load(path).record_at(0)["digest"] == "other"

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        j = RunJournal.open_fresh(path)
        for k in range(4):
            j.append(_rec(k))
        j.close()
        raw = open(path).read().rstrip("\n")
        torn = raw[: raw.rfind("{") + 20]  # cut the last record mid-JSON
        open(path, "w").write(torn)
        back = RunJournal.load(path)
        assert back.last_seq == 2  # record 3 was torn, prefix survives

    def test_load_rewrites_valid_prefix_after_torn_tail(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        j = RunJournal.open_fresh(path)
        for k in range(3):
            j.append(_rec(k))
        j.close()
        with open(path, "a") as fh:
            fh.write('{"seq": 3, "kind": "requ')  # torn mid-append
        back = RunJournal.load(path)
        back.append(_rec(3))
        back.close()
        lines = [json.loads(l) for l in open(path).read().splitlines()]
        assert [r["seq"] for r in lines] == [0, 1, 2, 3]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        j = RunJournal.open_fresh(path)
        for k in range(3):
            j.append(_rec(k))
        j.close()
        lines = open(path).read().splitlines()
        lines[1] = '{"broken'
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError, match="not the tail"):
            RunJournal.load(path)

    def test_sequence_gap_in_file_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps(_rec(0)) + "\n")
            fh.write(json.dumps(_rec(5)) + "\n")
        with pytest.raises(JournalCorruptError, match="non-contiguous"):
            RunJournal.load(path)
