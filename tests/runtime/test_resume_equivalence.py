"""Kill/resume equivalence matrix — the crash-safety acceptance test.

For a grid of seeded (scenario, kill-point) pairs — at least 20,
including kills inside fault blackouts and mid-retry-backoff — a run
killed at an event boundary and resumed from ``snapshot + journal tail``
must produce a final schedule, cost and fault log bit-identical to the
uninterrupted run, with matching state digests at *every* journaled
sequence number.
"""

import pytest

from repro import (
    FaultPlan,
    Outage,
    SpeculativeCachingResilient,
)
from repro.faults.chaos import _results_equal
from repro.runtime import RunBudget, Supervisor
from repro.schedule import validate_schedule
from repro.sim.engine import ReplayDriver, merged_event_stream
from repro.workloads import poisson_zipf_instance

_TOL = 1e-9


def factory():
    # max_retries=4 keeps lossy transfers (loss_rate=0.3) from exhausting
    # retries outside blackouts, so uninterrupted runs validate cleanly
    # while still accruing retry backoff — the mid-backoff kill target.
    return SpeculativeCachingResilient(replicas=2, max_retries=4)


@pytest.fixture(scope="module")
def instance():
    return poisson_zipf_instance(n=50, m=4, rate=2.0, zipf_s=0.8, rng=21)


@pytest.fixture(scope="module")
def plans(instance):
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    generated = [
        FaultPlan.generate(
            seed=seed,
            num_servers=instance.num_servers,
            start=t0,
            end=tn,
            crash_rate=2.0,
            mean_outage=0.2,
            loss_rate=0.3,
        )
        # Seeds chosen so every uninterrupted run validates and the
        # family covers blackouts (1, 7, 13) and heavy retry traffic.
        for seed in (1, 7, 13, 28)
    ]
    # One scripted all-down window: guarantees a nonzero blackout to
    # kill inside, whatever the generated seeds happen to draw.
    t = float(instance.t[20])
    blackout_plan = FaultPlan(
        outages=tuple(
            Outage(s, t - 0.05, t + 0.4)
            for s in range(instance.num_servers)
        )
    )
    return generated + [blackout_plan]


def _blackout_kill(stream, blackouts):
    """Seq of the first event strictly inside a nonzero blackout."""
    for a, b in blackouts:
        if b - a <= _TOL:
            continue
        for k, ev in enumerate(stream):
            if a + _TOL < ev.time < b - _TOL:
                return k + 1
    return None


def _retry_kill(instance, plan):
    """Seq right after the retry-latency ledger first grows (mid-backoff)."""
    driver = ReplayDriver(factory(), instance, plan=plan)
    prev = 0.0
    while not driver.done:
        driver.step()
        if driver.ctx.retry_latency > prev and not driver.done:
            return driver.pos
        prev = driver.ctx.retry_latency
    return None


def _kill_points(instance, plan, reference):
    stream = merged_event_stream(instance, plan)
    total = len(stream)
    points = {1, total // 3, (2 * total) // 3, total - 1}
    tagged = {}
    blackout = _blackout_kill(stream, reference.result.blackouts)
    if blackout is not None:
        points.add(blackout)
        tagged["blackout"] = blackout
    retry = _retry_kill(instance, plan)
    if retry is not None:
        points.add(retry)
        tagged["retry"] = retry
    return sorted(p for p in points if 0 < p < total), tagged


class TestKillResumeMatrix:
    def test_matrix_is_bit_identical(self, instance, plans, tmp_path):
        pairs = 0
        special = {"blackout": 0, "retry": 0}
        for p, plan in enumerate(plans):
            reference = Supervisor(factory, instance, plan=plan).run()
            assert reference.completed
            points, tagged = _kill_points(instance, plan, reference)
            for kill in points:
                paths = dict(
                    journal_path=str(tmp_path / f"p{p}-k{kill}.jsonl"),
                    snapshot_path=str(tmp_path / f"p{p}-k{kill}.ckpt"),
                )
                # Alternate pause shapes: graceful pause (checkpoint at
                # the kill point) vs hard kill (resume from the last
                # periodic checkpoint, re-executing the journal tail).
                hard_kill = kill % 2 == 0
                config = dict(
                    snapshot_every=6,
                    sync=False,
                    checkpoint_on_pause=not hard_kill,
                )
                sup = Supervisor(
                    factory, instance, plan=plan, **paths, **config
                )
                partial = sup.run(RunBudget(max_events=kill))
                assert partial.degraded
                assert partial.events_delivered == kill
                validate_schedule(
                    partial.result.schedule,
                    instance,
                    allowed_gaps=partial.result.allowed_gaps(),
                    upto=partial.last_time,
                    upto_request=partial.requests_delivered,
                )
                # A fresh supervisor object — as after a process death —
                # resumes purely from the on-disk snapshot + journal.
                fresh = Supervisor(
                    factory, instance, plan=plan, **paths, **config
                )
                resumed = fresh.resume()
                assert resumed.completed
                if hard_kill:
                    # Resumes from the last periodic boundary at or
                    # before the kill — the tail gets re-executed.
                    assert resumed.resumed_from_seq == (kill // 6) * 6
                else:
                    assert resumed.resumed_from_seq == kill
                # Bit-identical outcome: schedule, cost, fault log ...
                assert _results_equal(resumed.result, reference.result)
                # ... and the state digest at EVERY sequence number.
                assert resumed.digests == reference.digests
                pairs += 1
                for tag, seq in tagged.items():
                    if seq == kill:
                        special[tag] += 1
        assert pairs >= 20, f"matrix too small: {pairs} pairs"
        assert special["blackout"] >= 1, "no kill inside a fault blackout"
        assert special["retry"] >= 1, "no kill mid-retry-backoff"

    def test_double_kill_double_resume(self, instance, plans, tmp_path):
        plan = plans[0]
        reference = Supervisor(factory, instance, plan=plan).run()
        total = reference.events_total
        paths = dict(
            journal_path=str(tmp_path / "double.jsonl"),
            snapshot_path=str(tmp_path / "double.ckpt"),
        )
        sup = Supervisor(
            factory, instance, plan=plan, snapshot_every=5, **paths
        )
        run = sup.run(RunBudget(max_events=total // 3))
        assert run.degraded
        # Second kill further along, then run to completion — each slice
        # from a fresh supervisor (process restart each time).
        sup2 = Supervisor(
            factory, instance, plan=plan, snapshot_every=5, **paths
        )
        run = sup2.resume(RunBudget(max_events=(2 * total) // 3))
        assert run.degraded
        sup3 = Supervisor(
            factory, instance, plan=plan, snapshot_every=5, **paths
        )
        run = sup3.resume()
        assert run.completed
        assert _results_equal(run.result, reference.result)
        assert run.digests == reference.digests
