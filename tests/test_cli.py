"""CLI tests (exercised in-process through ``repro.cli.main``)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "trace.csv"
    assert main(["generate", str(path), "-n", "30", "-m", "4", "--seed", "1"]) == 0
    return str(path)


class TestGenerate:
    def test_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        assert main(["generate", str(out), "-n", "10", "-m", "3"]) == 0
        assert out.exists()
        assert "wrote 10 requests" in capsys.readouterr().out


class TestSolve:
    def test_prints_optimal_cost(self, trace, capsys):
        assert main(["solve", trace]) == 0
        out = capsys.readouterr().out
        assert "optimal cost" in out and "lower bound" in out

    def test_diagram_flag(self, trace, capsys):
        assert main(["solve", trace, "--diagram"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_missing_file_is_error_exit(self, capsys):
        assert main(["solve", "/nonexistent/trace.csv"]) == 2
        assert "error" in capsys.readouterr().err


class TestOnline:
    @pytest.mark.parametrize(
        "policy",
        ["sc", "always-transfer", "never-delete", "randomized-ttl", "predictive"],
    )
    def test_policies_run(self, trace, capsys, policy):
        assert main(["online", trace, "--policy", policy]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_epoch_flag(self, trace, capsys):
        assert main(["online", trace, "--policy", "sc", "--epoch", "3"]) == 0
        assert "epochs" in capsys.readouterr().out


class TestCompare:
    def test_table_lists_all_policies(self, trace, capsys):
        assert main(["compare", trace]) == 0
        out = capsys.readouterr().out
        for name in (
            "off-line optimal",
            "speculative-caching",
            "always-transfer",
            "never-delete",
        ):
            assert name in out


class TestPaper:
    def test_reprints_worked_examples(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "8.9" in out  # Fig 6 optimum
        assert "7.2" in out  # Fig 2 decomposition


class TestExperiment:
    def test_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_run_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "7.2" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSvg:
    def test_writes_svg_file(self, trace, tmp_path, capsys):
        out = tmp_path / "schedule.svg"
        assert main(["svg", trace, str(out)]) == 0
        text = out.read_text()
        assert text.startswith("<svg") and text.rstrip().endswith("</svg>")
        assert "wrote" in capsys.readouterr().out


class TestSensitivity:
    def test_prints_table_and_breakpoints(self, trace, capsys):
        assert main(
            ["sensitivity", trace, "--lo", "0.2", "--hi", "4.0", "--points", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "optimal cost" in out
        assert "breakpoint" in out or "no structure change" in out


class TestParser:
    def test_cost_flags_global(self, trace, capsys):
        assert main(["--mu", "2.0", "--lam", "0.5", "solve", trace]) == 0

    def test_parser_builds(self):
        assert build_parser().prog == "repro-cache"

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


@pytest.fixture
def item_trace(tmp_path):
    from repro.workloads import TraceRecord, write_trace

    rng = __import__("numpy").random.default_rng(5)
    recs = sorted(
        (
            TraceRecord(
                float(t), int(rng.integers(4)), item=f"it-{int(rng.integers(3))}"
            )
            for t in rng.uniform(0.0, 50.0, size=120)
        ),
        key=lambda r: r.time,
    )
    path = tmp_path / "svc.csv"
    write_trace(recs, path)
    return str(path)


class TestService:
    def test_synthetic_persistent_pool_verifies(self, capsys):
        rc = main(
            [
                "service", "--items", "4", "-n", "120", "-m", "4",
                "--processes", "2", "--pool", "persistent",
                "--policy", "sc", "--verify-serial", "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bit-identical to serial" in out
        assert "off-line optimal total" in out

    def test_columnar_trace_is_sniffed(self, item_trace, tmp_path, capsys):
        col = str(tmp_path / "svc.col")
        assert main(["convert", item_trace, col]) == 0
        rc = main(
            ["service", col, "--processes", "2", "--verify-serial"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bit-identical to serial" in out

    def test_csv_and_columnar_totals_agree(self, item_trace, tmp_path, capsys):
        col = str(tmp_path / "svc.col")
        assert main(["convert", item_trace, col]) == 0
        assert main(["service", item_trace]) == 0
        csv_out = capsys.readouterr().out
        assert main(["service", col]) == 0
        col_out = capsys.readouterr().out
        pick = lambda s: [
            ln for ln in s.splitlines() if "off-line optimal total" in ln
        ]
        assert pick(csv_out) == pick(col_out)

    def test_persistent_pool_requires_shm(self, capsys):
        rc = main(
            [
                "service", "--items", "2", "-n", "40", "-m", "3",
                "--processes", "2", "--pool", "persistent",
                "--transport", "pickle",
            ]
        )
        assert rc == 2
        assert "requires --transport shm" in capsys.readouterr().err

    def test_no_shm_segments_leak(self, capsys):
        from repro.service.fabric import active_segments

        assert main(
            [
                "service", "--items", "3", "-n", "90", "-m", "4",
                "--processes", "2", "--pool", "persistent",
            ]
        ) == 0
        assert active_segments() == ()


class TestConvert:
    def test_reports_rows_and_sizes(self, item_trace, tmp_path, capsys):
        dest = str(tmp_path / "out.col")
        assert main(["convert", item_trace, dest]) == 0
        out = capsys.readouterr().out
        assert "converted 120 rows" in out and "bytes" in out


class TestChaos:
    def test_clean_sweep_exits_zero(self, capsys):
        rc = main(
            ["chaos", "-n", "40", "-m", "4", "--scenarios", "3", "--seed", "7"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out

    def test_kill_runner_flag_reports_equivalence(self, capsys):
        rc = main(
            [
                "chaos", "-n", "40", "-m", "4", "--scenarios", "2",
                "--seed", "7", "--kill-runner",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kill/resume equivalence" in out
        assert "kill-seq" in out

    def test_violation_exits_nonzero_and_names_seed(self, capsys, monkeypatch):
        # Force a failing sweep: the exit-code contract (1 = invariant
        # violation) must hold regardless of how the violation arose.
        from repro.faults import chaos as chaos_mod
        from repro.faults.chaos import ChaosOutcome

        def rigged(inst, plans, factory, **kwargs):
            return [
                ChaosOutcome(
                    seed=plan.seed,
                    result=None,
                    crashes=0,
                    cost=0.0,
                    penalty=0.0,
                    total_cost=0.0,
                    blackouts=0,
                    blackout_time=0.0,
                    dropped=0,
                    reseeds=0,
                    violations=[f"seed {plan.seed}: rigged failure"],
                )
                for plan in plans
            ]

        monkeypatch.setattr(chaos_mod, "run_chaos_suite", rigged)
        rc = main(["chaos", "-n", "20", "-m", "3", "--scenarios", "2"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "INVARIANT VIOLATION" in captured.err
        assert "2/2 scenarios FAILED" in captured.err
        assert "FAIL" in captured.out  # status column in the report


class TestSupervise:
    _args = ["supervise", "-n", "30", "-m", "4", "--seed", "3"]

    def test_complete_run_exits_zero(self, capsys):
        assert main(self._args) == 0
        out = capsys.readouterr().out
        assert "COMPLETE" in out and "completion 100.0%" in out

    def test_deadline_partial_exits_three(self, tmp_path, capsys):
        j, s = str(tmp_path / "j.jsonl"), str(tmp_path / "s.ckpt")
        rc = main(
            self._args
            + [
                "--crash-rate", "1.0", "--deadline-events", "10",
                "--journal", j, "--snapshot", s,
            ]
        )
        assert rc == 3
        out = capsys.readouterr().out
        assert "PARTIAL" in out and "resume with --resume" in out

    def test_resume_completes_after_partial(self, tmp_path, capsys):
        j, s = str(tmp_path / "j.jsonl"), str(tmp_path / "s.ckpt")
        faulty = self._args + ["--crash-rate", "1.0", "--journal", j, "--snapshot", s]
        assert main(faulty + ["--deadline-events", "10"]) == 3
        assert main(faulty + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "COMPLETE" in out

    def test_resume_requires_both_paths(self, tmp_path, capsys):
        rc = main(self._args + ["--resume", "--journal", str(tmp_path / "j")])
        assert rc == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_faults_require_fault_aware_policy(self, capsys):
        rc = main(self._args + ["--policy", "sc", "--crash-rate", "1.0"])
        assert rc == 2
        assert "not fault-aware" in capsys.readouterr().err
