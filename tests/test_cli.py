"""CLI tests (exercised in-process through ``repro.cli.main``)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "trace.csv"
    assert main(["generate", str(path), "-n", "30", "-m", "4", "--seed", "1"]) == 0
    return str(path)


class TestGenerate:
    def test_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        assert main(["generate", str(out), "-n", "10", "-m", "3"]) == 0
        assert out.exists()
        assert "wrote 10 requests" in capsys.readouterr().out


class TestSolve:
    def test_prints_optimal_cost(self, trace, capsys):
        assert main(["solve", trace]) == 0
        out = capsys.readouterr().out
        assert "optimal cost" in out and "lower bound" in out

    def test_diagram_flag(self, trace, capsys):
        assert main(["solve", trace, "--diagram"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_missing_file_is_error_exit(self, capsys):
        assert main(["solve", "/nonexistent/trace.csv"]) == 2
        assert "error" in capsys.readouterr().err


class TestOnline:
    @pytest.mark.parametrize(
        "policy",
        ["sc", "always-transfer", "never-delete", "randomized-ttl", "predictive"],
    )
    def test_policies_run(self, trace, capsys, policy):
        assert main(["online", trace, "--policy", policy]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_epoch_flag(self, trace, capsys):
        assert main(["online", trace, "--policy", "sc", "--epoch", "3"]) == 0
        assert "epochs" in capsys.readouterr().out


class TestCompare:
    def test_table_lists_all_policies(self, trace, capsys):
        assert main(["compare", trace]) == 0
        out = capsys.readouterr().out
        for name in (
            "off-line optimal",
            "speculative-caching",
            "always-transfer",
            "never-delete",
        ):
            assert name in out


class TestPaper:
    def test_reprints_worked_examples(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "8.9" in out  # Fig 6 optimum
        assert "7.2" in out  # Fig 2 decomposition


class TestExperiment:
    def test_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_run_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "7.2" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSvg:
    def test_writes_svg_file(self, trace, tmp_path, capsys):
        out = tmp_path / "schedule.svg"
        assert main(["svg", trace, str(out)]) == 0
        text = out.read_text()
        assert text.startswith("<svg") and text.rstrip().endswith("</svg>")
        assert "wrote" in capsys.readouterr().out


class TestSensitivity:
    def test_prints_table_and_breakpoints(self, trace, capsys):
        assert main(
            ["sensitivity", trace, "--lo", "0.2", "--hi", "4.0", "--points", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "optimal cost" in out
        assert "breakpoint" in out or "no structure change" in out


class TestParser:
    def test_cost_flags_global(self, trace, capsys):
        assert main(["--mu", "2.0", "--lam", "0.5", "solve", trace]) == 0

    def test_parser_builds(self):
        assert build_parser().prog == "repro-cache"

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
