"""Cost-latency frontier tests."""

import pytest

from repro.emulator import FrontierPoint, cost_latency_frontier, pareto_front
from repro.online import AlwaysTransfer, NeverDelete, SpeculativeCaching
from repro.workloads import poisson_zipf_instance


def points(seed=0):
    inst = poisson_zipf_instance(120, 5, rate=2.0, rng=seed)
    return cost_latency_frontier(
        inst,
        [
            ("sc", lambda: SpeculativeCaching()),
            ("always-transfer", lambda: AlwaysTransfer()),
            ("never-delete", lambda: NeverDelete()),
        ],
    )


class TestFrontier:
    def test_optimal_included_and_cheapest(self):
        pts = points()
        opt = next(p for p in pts if p.policy == "off-line optimal")
        assert all(opt.cost <= p.cost + 1e-9 for p in pts)

    def test_never_delete_buys_latency(self):
        pts = points()
        nd = next(p for p in pts if p.policy == "never-delete")
        sc = next(p for p in pts if p.policy == "sc")
        assert nd.hit_ratio >= sc.hit_ratio
        assert nd.cost >= sc.cost

    def test_optional_optimal_exclusion(self):
        inst = poisson_zipf_instance(40, 4, rate=1.0, rng=1)
        pts = cost_latency_frontier(
            inst, [("sc", lambda: SpeculativeCaching())], include_optimal=False
        )
        assert [p.policy for p in pts] == ["sc"]


class TestPareto:
    def test_front_is_nondominated(self):
        pts = points()
        front = pareto_front(pts)
        for p in front:
            assert not any(q.dominates(p) for q in pts)

    def test_optimal_always_on_front(self):
        front = pareto_front(points())
        assert any(p.policy == "off-line optimal" for p in front)

    def test_dominates_semantics(self):
        a = FrontierPoint("a", cost=1.0, p95_latency=1.0, hit_ratio=1.0)
        b = FrontierPoint("b", cost=2.0, p95_latency=2.0, hit_ratio=0.5)
        c = FrontierPoint("c", cost=0.5, p95_latency=3.0, hit_ratio=0.2)
        assert a.dominates(b)
        assert not a.dominates(c) and not c.dominates(a)
        assert not a.dominates(a)

    def test_front_sorted_by_cost(self):
        front = pareto_front(points())
        costs = [p.cost for p in front]
        assert costs == sorted(costs)
