"""Latency emulator tests."""

import pytest

from repro import InvalidScheduleError, Schedule, solve_offline
from repro.emulator import LatencyModel, emulate
from repro.network import Cluster
from repro.online import NeverDelete, SpeculativeCaching

from ..conftest import make_instance


class TestLatencyModel:
    def test_defaults(self):
        lm = LatencyModel()
        assert lm.hit < lm.fetch_base

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(hit=-1.0)

    def test_flat_fetch(self):
        assert LatencyModel(fetch_base=30.0).fetch(0, 1) == 30.0

    def test_distance_term(self):
        cluster = Cluster.grid(1, 3, spacing=2.0)
        lm = LatencyModel(fetch_base=10.0, fetch_per_distance=5.0)
        assert lm.fetch(0, 2, cluster) == pytest.approx(10.0 + 5.0 * 4.0)

    def test_distance_needs_layout(self):
        lm = LatencyModel(fetch_per_distance=1.0)
        with pytest.raises(ValueError, match="layout"):
            lm.fetch(0, 1, Cluster(3))


class TestEmulate:
    def test_hit_vs_fetch_classification(self):
        inst = make_instance([1.0, 2.0], [1, 1], m=2)
        sched = (
            Schedule()
            .hold(0, 0.0, 1.0)
            .transfer(0, 1, 1.0)
            .hold(1, 1.0, 2.0)
        )
        rep = emulate(sched, inst)
        assert rep.outcomes[0].mode == "fetch"  # copy arrives with r_1
        assert rep.outcomes[1].mode == "hit"  # cached since t=1
        assert rep.hit_ratio == pytest.approx(0.5)

    def test_fetch_source_recorded(self):
        inst = make_instance([1.0], [1], m=2)
        sched = Schedule().hold(0, 0.0, 1.0).transfer(0, 1, 1.0)
        rep = emulate(sched, inst)
        assert rep.outcomes[0].src == 0

    def test_unserved_request_raises(self):
        inst = make_instance([1.0], [1], m=2)
        sched = Schedule().hold(0, 0.0, 1.0)
        with pytest.raises(InvalidScheduleError, match="not served"):
            emulate(sched, inst)

    def test_cost_matches_schedule(self, fig6):
        sched = solve_offline(fig6).schedule()
        rep = emulate(sched, fig6)
        assert rep.cost == pytest.approx(8.9)

    def test_latency_statistics(self):
        inst = make_instance([1.0, 2.0, 3.0], [1, 1, 1], m=2)
        sched = (
            Schedule()
            .hold(0, 0.0, 1.0)
            .transfer(0, 1, 1.0)
            .hold(1, 1.0, 3.0)
        )
        rep = emulate(sched, inst, LatencyModel(hit=1.0, fetch_base=11.0))
        assert rep.mean_latency == pytest.approx((11.0 + 1.0 + 1.0) / 3)
        assert rep.percentile(50) == 1.0
        assert rep.within_deadline(5.0) == pytest.approx(2 / 3)

    def test_never_delete_maximises_hits(self):
        from repro.workloads import poisson_zipf_instance

        inst = poisson_zipf_instance(100, 4, rate=2.0, rng=0)
        nd = emulate(NeverDelete().run(inst).schedule, inst)
        sc = emulate(SpeculativeCaching().run(inst).schedule, inst)
        assert nd.hit_ratio >= sc.hit_ratio

    def test_empty_instance(self):
        inst = make_instance([], [], m=2)
        rep = emulate(Schedule(), inst)
        assert rep.hit_ratio == 0.0 and rep.mean_latency == 0.0
        assert rep.within_deadline(1.0) == 1.0
