"""V-/H-reduction and Theorem-3 chain tests (paper Lemmas 5-8)."""

import numpy as np
import pytest

from repro import CostModel, ProblemInstance, double_transfer, solve_offline
from repro.online import SpeculativeCaching
from repro.online.reductions import (
    check_short_windows_cached,
    check_single_cover_on_big_gaps,
    gap_cover_matrix,
    reduced_cost,
    refined_sigma,
    short_request_set,
    verify_theorem3,
)

from ..conftest import make_instance


def random_instance(rng):
    m = int(rng.integers(2, 6))
    n = int(rng.integers(2, 35))
    t = np.cumsum(rng.uniform(0.05, 3.0, size=n))
    srv = rng.integers(0, m, size=n)
    mu = float(rng.uniform(0.3, 3.0))
    lam = float(rng.uniform(0.3, 3.0))
    return ProblemInstance.from_arrays(
        t, srv, num_servers=m, cost=CostModel(mu, lam)
    )


class TestShortRequestSet:
    def test_fig6(self, fig6):
        # Only r_6 has mu*sigma < lam (0.6 < 1).
        assert short_request_set(fig6) == [6]

    def test_first_requests_never_short(self):
        inst = make_instance([1.0, 2.0], [1, 2], m=3)
        assert short_request_set(inst) == []

    def test_threshold_is_strict(self):
        inst = make_instance([1.0, 2.0], [0, 0], m=1, mu=1.0, lam=1.0)
        # sigma_2 = 1.0 => mu*sigma == lam exactly: NOT in SR (strict <).
        assert 2 not in short_request_set(inst)


class TestGapCoverMatrix:
    def test_optimal_fig6_cover(self, fig6):
        sched = solve_offline(fig6).schedule()
        cov = gap_cover_matrix(sched, fig6)
        assert cov.shape == (4, 7)
        # Origin caches [0, 1.4] -> gaps 1..4; s^2 caches [0.5, 4.0] ->
        # gaps 2..7.
        assert cov[0, :4].all() and not cov[0, 4:].any()
        assert cov[1, 1:].all() and not cov[1, 0]

    def test_unaligned_schedule_rejected(self, fig6):
        from repro import Schedule

        bad = Schedule().hold(0, 0.0, 0.77)
        with pytest.raises(Exception, match="grid"):
            gap_cover_matrix(bad, fig6)


class TestLemmaChecks:
    def test_lemma5_and_6_hold_for_opt_and_dt(self, rng):
        for _ in range(20):
            inst = random_instance(rng)
            opt = solve_offline(inst).schedule()
            check_single_cover_on_big_gaps(opt, inst)
            check_short_windows_cached(opt, inst)
            run = SpeculativeCaching().run(inst)
            dt = double_transfer(run, inst)
            check_single_cover_on_big_gaps(dt.schedule, inst)
            check_short_windows_cached(dt.schedule, inst)

    def test_lemma5_violation_detected(self):
        from repro import Schedule

        inst = make_instance([5.0], [1], m=2)  # single big gap
        bad = (
            Schedule()
            .hold(0, 0.0, 5.0)
            .hold(1, 0.0, 5.0)  # second cover across the big gap
            .transfer(0, 1, 5.0)
        )
        with pytest.raises(Exception, match="Lemma 5"):
            check_single_cover_on_big_gaps(bad, inst)

    def test_lemma6_violation_detected(self):
        from repro import Schedule

        inst = make_instance([1.0, 1.2], [1, 1], m=2)  # sigma_2 = 0.2 < 1
        bad = (
            Schedule()
            .hold(0, 0.0, 1.2)
            .transfer(0, 1, 1.0)
            .transfer(0, 1, 1.2)  # transfer instead of the short cache
        )
        with pytest.raises(Exception, match="Lemma 6"):
            check_short_windows_cached(bad, inst)


class TestRefinedSigma:
    def test_case3_unchanged_for_small_gaps(self):
        inst = make_instance([1.0, 1.5], [0, 0], m=1)  # gaps <= lam
        rs = refined_sigma(inst)
        assert rs[2] == pytest.approx(inst.cost.mu * inst.sigma[2])

    def test_case12_subtracts_v_excess(self):
        inst = make_instance([1.0, 4.0], [0, 0], m=1)  # gap 3 > lam = 1
        rs = refined_sigma(inst)
        # mu*sigma' = mu*sigma - (mu*dt - lam) = 3 - (3 - 1) = 1
        assert rs[2] == pytest.approx(1.0)

    def test_lemma8_premise_holds(self, rng):
        # mu*sigma'_i >= lam for every i not in SR.
        for _ in range(20):
            inst = random_instance(rng)
            rs = refined_sigma(inst)
            sr = set(short_request_set(inst))
            for i in range(1, inst.n + 1):
                if i not in sr:
                    assert rs[i] >= inst.cost.lam - 1e-9


class TestTheorem3Chain:
    def test_fig7(self, fig7):
        rep = verify_theorem3(fig7)
        assert rep.holds()
        assert rep.ratio <= 3.0 + 1e-9

    def test_random_instances(self, rng):
        for _ in range(25):
            rep = verify_theorem3(random_instance(rng))
            assert rep.holds(), rep

    def test_reduced_costs_ordering(self, rng):
        for _ in range(10):
            inst = random_instance(rng)
            rep = verify_theorem3(inst)
            assert rep.dt_reduced <= rep.lemma7_bound + 1e-6
            assert rep.opt_reduced >= rep.lemma8_bound - 1e-6

    def test_reduced_cost_never_exceeds_raw(self, rng):
        for _ in range(10):
            inst = random_instance(rng)
            opt = solve_offline(inst)
            sched = opt.schedule()
            assert (
                reduced_cost(sched, inst)
                <= sched.total_cost(inst.cost) + 1e-9
            )

    def test_report_repr_fields(self, fig7):
        rep = verify_theorem3(fig7)
        assert rep.n_prime == fig7.n - len(short_request_set(fig7))
        assert rep.lemma7_bound == pytest.approx(3 * rep.lemma8_bound)
