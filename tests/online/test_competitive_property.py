"""Property-based competitive-ratio guarantees (Theorem 3)."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro import solve_offline, validate_schedule
from repro.analysis import cyclic_adversary, empirical_ratio
from repro.online import SpeculativeCaching

from ..conftest import instances

_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestThreeCompetitive:
    @given(instances(max_m=5, max_n=25))
    @settings(**_SETTINGS)
    def test_sc_within_factor_three(self, inst):
        run = SpeculativeCaching().run(inst)
        opt = solve_offline(inst).optimal_cost
        assert run.cost <= 3.0 * opt + 1e-6

    @given(instances(max_m=5, max_n=25))
    @settings(**_SETTINGS)
    def test_sc_schedule_always_feasible(self, inst):
        run = SpeculativeCaching().run(inst)
        validate_schedule(run.schedule, inst)

    @given(instances(max_m=4, max_n=20))
    @settings(**_SETTINGS)
    def test_sc_never_beats_opt(self, inst):
        # Sanity: no online run may cost less than the off-line optimum.
        run = SpeculativeCaching().run(inst)
        assert run.cost >= solve_offline(inst).optimal_cost - 1e-6

    @given(instances(max_m=5, max_n=25))
    @settings(**_SETTINGS)
    def test_epoched_sc_within_factor_three(self, inst):
        # The guarantee is per-epoch, hence holds for any epoch size.
        run = SpeculativeCaching(epoch_size=3).run(inst)
        opt = solve_offline(inst).optimal_cost
        assert run.cost <= 3.0 * opt + 1e-6


class TestAdversaries:
    @pytest.mark.parametrize("gap_factor", [0.5, 0.9, 1.001, 1.5, 2.0, 3.0])
    def test_cyclic_adversary_respects_bound(self, gap_factor):
        inst = cyclic_adversary(m=4, rounds=15, gap_factor=gap_factor)
        assert empirical_ratio(inst) <= 3.0 + 1e-9

    def test_just_past_window_is_worse_than_well_inside(self):
        inside = empirical_ratio(cyclic_adversary(3, 20, 0.5))
        past = empirical_ratio(cyclic_adversary(3, 20, 1.05))
        assert past > inside
