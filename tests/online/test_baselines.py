"""Online baseline policy tests."""

import numpy as np
import pytest

from repro import CostModel, ProblemInstance, validate_schedule
from repro.online import AlwaysTransfer, NeverDelete, RandomizedTTL
from repro.schedule import migration_only_cost

from ..conftest import make_instance


class TestAlwaysTransfer:
    def test_matches_closed_form(self, rng):
        for _ in range(15):
            m = int(rng.integers(1, 6))
            n = int(rng.integers(1, 40))
            t = np.cumsum(rng.uniform(0.05, 2.0, size=n))
            srv = rng.integers(0, m, size=n)
            inst = ProblemInstance.from_arrays(t, srv, num_servers=m)
            run = AlwaysTransfer().run(inst)
            assert run.cost == pytest.approx(migration_only_cost(inst))

    def test_single_copy_at_all_times(self):
        inst = make_instance([1.0, 2.0, 3.0], [1, 0, 1], m=2)
        run = AlwaysTransfer().run(inst)
        for t in (0.5, 1.5, 2.5):
            assert run.schedule.copy_count_at(t) == 1

    def test_local_requests_free_of_transfers(self):
        inst = make_instance([1.0, 2.0], [0, 0], m=1)
        run = AlwaysTransfer().run(inst)
        assert run.counters["transfers"] == 0
        assert run.counters["local_hits"] == 2

    def test_feasible(self, fig7):
        run = AlwaysTransfer().run(fig7)
        validate_schedule(run.schedule, fig7)


class TestNeverDelete:
    def test_copies_accumulate(self):
        inst = make_instance([1.0, 2.0, 3.0], [1, 2, 0], m=3)
        run = NeverDelete().run(inst)
        assert run.schedule.copy_count_at(3.0) == 3

    def test_second_visit_is_free(self):
        inst = make_instance([1.0, 5.0], [1, 1], m=2)
        run = NeverDelete().run(inst)
        assert run.counters["transfers"] == 1
        assert run.counters["local_hits"] == 1

    def test_caching_cost_grows_with_touched_servers(self):
        inst = make_instance([1.0, 2.0], [1, 2], m=3, mu=1.0)
        run = NeverDelete().run(inst)
        # s0: [0,2], s1: [1,2], s2: [2,2] -> caching 3.0 + two transfers.
        assert run.cost == pytest.approx(3.0 + 2.0)

    def test_feasible(self, fig7):
        run = NeverDelete().run(fig7)
        validate_schedule(run.schedule, fig7)


class TestRandomizedTTL:
    def test_deterministic_given_seed(self, fig7):
        a = RandomizedTTL(seed=9).run(fig7)
        b = RandomizedTTL(seed=9).run(fig7)
        assert a.cost == pytest.approx(b.cost)
        assert a.counters == b.counters

    def test_different_seeds_can_differ(self):
        inst = make_instance(
            list(np.arange(1, 21) * 0.9), [i % 3 for i in range(20)], m=3
        )
        costs = {round(RandomizedTTL(seed=s).run(inst).cost, 6) for s in range(8)}
        assert len(costs) > 1

    def test_windows_stay_within_deterministic_window(self, fig7):
        algo = RandomizedTTL(seed=1)
        algo.begin(fig7)
        base = fig7.cost.speculative_window
        samples = [algo._window() for _ in range(200)]
        assert all(0.0 <= w <= base + 1e-12 for w in samples)

    def test_feasible_across_seeds(self, rng):
        for seed in range(10):
            m = int(rng.integers(2, 5))
            n = int(rng.integers(2, 30))
            t = np.cumsum(rng.uniform(0.05, 2.0, size=n))
            srv = rng.integers(0, m, size=n)
            inst = ProblemInstance.from_arrays(t, srv, num_servers=m)
            run = RandomizedTTL(seed=seed).run(inst)
            validate_schedule(run.schedule, inst)

    def test_reusable_across_runs(self, fig7):
        algo = RandomizedTTL(seed=4)
        first = algo.run(fig7).cost
        second = algo.run(fig7).cost
        assert first == pytest.approx(second)  # re-seeded per run
