"""Receding-horizon (MPC) planner tests."""

import numpy as np
import pytest

from repro import RecedingHorizonPlanner, solve_offline, validate_schedule
from repro.workloads import poisson_zipf_instance

from ..conftest import make_instance


class TestOptimalityLimit:
    @pytest.mark.parametrize("seed", range(6))
    def test_full_horizon_is_exactly_optimal(self, seed):
        # Principle of optimality: re-planning over the true remaining
        # future and executing one step at a time loses nothing.
        inst = poisson_zipf_instance(30, 4, rate=1.0, rng=seed)
        run = RecedingHorizonPlanner().run(inst)
        validate_schedule(run.schedule, inst)
        assert run.cost == pytest.approx(solve_offline(inst).optimal_cost)

    def test_fig6(self, fig6):
        run = RecedingHorizonPlanner().run(fig6)
        assert run.cost == pytest.approx(8.9)

    def test_long_horizon_equals_full(self):
        inst = poisson_zipf_instance(25, 4, rate=1.0, rng=1)
        full = RecedingHorizonPlanner().run(inst).cost
        long_k = RecedingHorizonPlanner(horizon=25).run(inst).cost
        assert long_k == pytest.approx(full)


class TestShortHorizons:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_feasible_and_never_below_opt(self, k):
        for seed in range(5):
            inst = poisson_zipf_instance(40, 4, rate=1.5, rng=seed)
            run = RecedingHorizonPlanner(horizon=k).run(inst)
            validate_schedule(run.schedule, inst)
            assert run.cost >= solve_offline(inst).optimal_cost - 1e-6

    def test_more_horizon_helps_on_average(self):
        insts = [poisson_zipf_instance(50, 4, rate=1.0, rng=s) for s in range(6)]
        opts = [solve_offline(i).optimal_cost for i in insts]

        def mean_ratio(k):
            return np.mean(
                [
                    RecedingHorizonPlanner(horizon=k).run(i).cost / o
                    for i, o in zip(insts, opts)
                ]
            )

        assert mean_ratio(10) <= mean_ratio(1) + 1e-9

    def test_planned_drops_are_recorded(self):
        inst = make_instance([1.0, 8.0], [1, 0], m=2)
        run = RecedingHorizonPlanner().run(inst)
        # The copy transferred to s1 is useless afterwards; the planner
        # drops it at the start of the long gap rather than renting it.
        drops = [l for l in run.lifetimes if l.ended_by == "planned-drop"]
        assert drops

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            RecedingHorizonPlanner(horizon=0)

    def test_names(self):
        assert RecedingHorizonPlanner().name == "receding-horizon[full]"
        assert RecedingHorizonPlanner(horizon=3).name == "receding-horizon[3]"


class TestStateTracking:
    def test_local_hits_counted(self):
        inst = make_instance([1.0, 1.2], [0, 0], m=2)
        run = RecedingHorizonPlanner().run(inst)
        assert run.counters["local_hits"] == 2
        assert run.counters["transfers"] == 0

    def test_single_copy_invariant_respected(self):
        inst = poisson_zipf_instance(30, 3, rate=0.5, rng=2)
        run = RecedingHorizonPlanner(horizon=3).run(inst)
        # Coverage at all times (validator) plus: never more copies than
        # servers.
        for t in np.linspace(float(inst.t[0]), float(inst.t[-1]), 20):
            assert 1 <= run.schedule.copy_count_at(t) <= inst.num_servers
