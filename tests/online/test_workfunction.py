"""Work Function Algorithm tests."""

import numpy as np
import pytest

from repro import solve_offline, validate_schedule
from repro.online import SpeculativeCaching, WorkFunctionCaching
from repro.workloads import poisson_zipf_instance

from ..conftest import make_instance


class TestBasics:
    def test_feasible_across_workloads(self):
        for seed in range(6):
            inst = poisson_zipf_instance(60, 5, rate=1.0, rng=seed)
            run = WorkFunctionCaching().run(inst)
            validate_schedule(run.schedule, inst)
            assert run.cost >= solve_offline(inst).optimal_cost - 1e-6

    def test_hits_on_resident_copies(self):
        inst = make_instance([1.0, 1.2, 1.4], [0, 0, 0], m=2)
        run = WorkFunctionCaching().run(inst)
        assert run.counters["local_hits"] == 3
        assert run.counters["transfers"] == 0

    def test_work_function_tracks_offline_optimum(self):
        # After serving everything, min_S w(S) equals C(n).
        inst = poisson_zipf_instance(30, 4, rate=1.0, rng=1)
        algo = WorkFunctionCaching()
        algo.run(inst)
        assert min(w for w in algo._w if w != np.inf) == pytest.approx(
            solve_offline(inst).optimal_cost
        )

    def test_online_information_model(self):
        # Prefix consistency: WFA never peeks ahead.
        full = make_instance([1.0, 2.2, 3.1, 9.0], [1, 0, 1, 0], m=2)
        prefix = make_instance([1.0, 2.2, 3.1], [1, 0, 1], m=2)
        rf = WorkFunctionCaching().run(full)
        rp = WorkFunctionCaching().run(prefix)
        assert rf.transfers[: len(rp.transfers)] == rp.transfers

    def test_beats_sc_on_stationary_traffic(self):
        insts = [poisson_zipf_instance(80, 5, rate=1.0, rng=s) for s in range(8)]
        opts = [solve_offline(i).optimal_cost for i in insts]
        wfa = np.mean(
            [WorkFunctionCaching().run(i).cost / o for i, o in zip(insts, opts)]
        )
        sc = np.mean(
            [SpeculativeCaching().run(i).cost / o for i, o in zip(insts, opts)]
        )
        assert wfa < sc


class TestGuards:
    def test_fleet_size_cap(self):
        inst = poisson_zipf_instance(5, 13, rate=1.0, rng=0)
        with pytest.raises(ValueError, match="2\\^m"):
            WorkFunctionCaching().run(inst)

    def test_aggression_validated(self):
        with pytest.raises(ValueError):
            WorkFunctionCaching(aggression=0.0)

    def test_aggression_in_name(self):
        assert "2x" in WorkFunctionCaching(aggression=2.0).name

    def test_deterministic(self, fig7):
        a = WorkFunctionCaching().run(fig7)
        b = WorkFunctionCaching().run(fig7)
        assert a.cost == pytest.approx(b.cost)
