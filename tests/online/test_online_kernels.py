"""Differential gate: the batched online kernel vs the per-event oracle.

``repro.kernels.online`` promises *bit-identity* with
``run_online(SpeculativeCaching(...), inst)`` — not approximate equality.
Every test here compares full result structures (cost, counters,
canonical intervals, transfers in both orders, lifetimes, decision
digest) with ``==``, no tolerances, across the adversarial shapes the
per-epoch state machine is most likely to get wrong:

* window-boundary ties — the inter-request gap exactly equals the
  speculative window ``Δt = λ/μ``, so copies expire at the very instant
  of the next request (``expiry >= t`` is a hit, strict pop is ``< t``);
* lone-copy extension chains (Observation 4) — the last surviving copy
  re-arms at ``e + W`` repeatedly, drifting past the original window by
  accumulated FP error if the kernel dared to compute ``e + k·W``;
* last-two-copies-expire-together — the source/target tie rule picks the
  transfer *target*, else the latest cause;
* ``epoch_size=1`` — every transfer immediately resets the epoch;
* duplicate timestamps — only representable on duck instances
  (``ProblemInstance`` enforces strictly increasing times);
* degenerate fleets — ``m=1`` and single-request streams.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CostModel
from repro.kernels.batch import BatchLayout
from repro.kernels.online import (
    ONLINE_KERNELS,
    decision_digest,
    run_online_batch,
    run_online_layout,
    run_online_vector,
    sweep_layout,
    vector_policy_config,
    vectorizable,
)
from repro.online import SpeculativeCaching
from repro.online.baselines import RandomizedTTL
from repro.service.multi import MultiItemInstance
from repro.sim.engine import run_online

from ..conftest import instances, make_instance

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_identical(inst, window_factor=1.0, epoch_size=None):
    """Vector kernel vs per-event oracle: every field, ``==``, no slack."""
    algo = SpeculativeCaching(window_factor=window_factor, epoch_size=epoch_size)
    ref = run_online(algo, inst, kernel="event")
    run = run_online_vector(
        inst,
        window_factor=window_factor,
        epoch_size=epoch_size,
        materialize=False,
    )
    res = run.to_result()
    assert res.cost == ref.cost
    assert res.counters == ref.counters
    assert res.algorithm == ref.algorithm
    assert res.schedule.intervals == ref.schedule.intervals
    assert res.schedule.transfers == ref.schedule.transfers
    assert res.transfers_raw() == ref.transfers_raw()
    assert res.lifetimes == ref.lifetimes
    assert decision_digest(run) == decision_digest(ref)
    return ref


def duck(times, servers, m, mu=1.0, lam=1.0, origin=0):
    """Instance stand-in that tolerates duplicate timestamps.

    ``ProblemInstance`` rejects non-increasing times, but the engine and
    the kernel both accept duck-typed instances, and equal-time requests
    are exactly where pop-group tie handling can diverge.
    """
    t = np.concatenate([[0.0], np.asarray(times, dtype=float)])
    return SimpleNamespace(
        t=t,
        srv=np.concatenate([[origin], np.asarray(servers, dtype=np.int64)]),
        n=len(times),
        num_servers=m,
        cost=CostModel(mu=mu, lam=lam),
        origin=origin,
    )


class TestEligibility:
    def test_kernel_names(self):
        assert ONLINE_KERNELS == ("auto", "event", "vector")

    def test_plain_sc_is_vectorizable(self):
        assert vectorizable(SpeculativeCaching())
        assert vectorizable(SpeculativeCaching(window_factor=2.0, epoch_size=3))

    def test_subclasses_and_other_policies_are_not(self):
        class Tweaked(SpeculativeCaching):
            pass

        assert not vectorizable(Tweaked())
        assert not vectorizable(RandomizedTTL())
        assert vector_policy_config(RandomizedTTL()) is None

    def test_vector_kernel_rejects_ineligible_policy(self, fig6):
        with pytest.raises(ValueError, match="vector"):
            run_online(RandomizedTTL(), fig6, kernel="vector")

    def test_unknown_kernel_rejected(self, fig6):
        with pytest.raises(ValueError, match="kernel"):
            run_online(SpeculativeCaching(), fig6, kernel="warp")


class TestAdversarialShapes:
    def test_paper_examples(self, fig2, fig6, fig7):
        for inst in (fig2, fig6, fig7):
            assert_identical(inst)
            assert_identical(inst, epoch_size=2)

    def test_window_boundary_tie(self):
        # Gap exactly Δt = λ/μ: each copy expires at the instant of the
        # next request.  expiry >= t counts as a hit; the expiry queue
        # pops strictly-before only.
        cost = CostModel(mu=1.0, lam=2.0)
        gap = cost.speculative_window
        times = [gap * k for k in range(1, 9)]
        inst = make_instance(times, [1, 0, 1, 0, 1, 0, 1, 0], m=2, mu=1.0, lam=2.0)
        ref = assert_identical(inst)
        assert ref.counters["local_hits"] > 0  # the tie really is a hit

    def test_just_past_window_boundary(self):
        cost = CostModel(mu=1.0, lam=2.0)
        gap = np.nextafter(cost.speculative_window, np.inf)
        times = list(np.cumsum([gap] * 8))
        inst = make_instance(times, [1, 0, 1, 0, 1, 0, 1, 0], m=2, mu=1.0, lam=2.0)
        assert_identical(inst)

    def test_lone_copy_extension_chain(self):
        # One early burst creates copies, then a long quiet stretch: the
        # last survivor re-arms at e + W repeatedly (Observation 4).  The
        # chained sum e + W + W + ... differs in FP from e + k·W, so any
        # closed-form shortcut in the kernel would diverge here.
        inst = make_instance(
            [0.1, 0.2, 0.3, 1000.0], [1, 2, 3, 0], m=4, mu=0.3, lam=7.0
        )
        ref = assert_identical(inst)
        assert ref.counters["extensions"] >= 2

    def test_last_two_copies_expire_together(self):
        # Source refresh and target creation at the same request share one
        # expiry instant; when that pair is the whole population the
        # survivor must be the transfer *target*.
        inst = make_instance([1.0, 50.0], [1, 1], m=2, mu=1.0, lam=1.0)
        assert_identical(inst)
        inst = make_instance([1.0, 2.0, 90.0], [1, 0, 1], m=2, mu=0.5, lam=3.0)
        assert_identical(inst)

    def test_epoch_size_one(self):
        inst = make_instance(
            [1.0, 2.5, 3.0, 7.0, 7.5, 11.0], [1, 2, 0, 2, 1, 0], m=3
        )
        ref = assert_identical(inst, epoch_size=1)
        assert ref.counters["epochs"] >= 1

    def test_duplicate_timestamps(self):
        inst = duck(
            [1.0, 1.0, 1.0, 2.0, 2.0, 5.0], [1, 2, 1, 0, 2, 1], m=3, lam=0.7
        )
        assert_identical(inst)
        assert_identical(inst, window_factor=0.5, epoch_size=1)

    def test_single_server_fleet(self):
        inst = make_instance([1.0, 2.0, 30.0], [0, 0, 0], m=1, mu=2.0, lam=0.1)
        ref = assert_identical(inst)
        assert ref.counters["transfers"] == 0

    def test_single_request(self):
        assert_identical(make_instance([4.0], [1], m=2))
        assert_identical(make_instance([4.0], [0], m=2))  # immediate hit

    @given(instances(max_m=5, max_n=30))
    @settings(**_SETTINGS)
    def test_differential_random(self, inst):
        assert_identical(inst)

    @given(
        instances(max_m=4, max_n=20),
        st.sampled_from([0.5, 1.0, 2.0]),
        st.sampled_from([None, 1, 8]),
    )
    @settings(**_SETTINGS)
    def test_differential_ttl_epoch_grid(self, inst, gamma, epoch):
        assert_identical(inst, window_factor=gamma, epoch_size=epoch)

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(**_SETTINGS)
    def test_differential_duplicate_timestamps(self, n, m, seed):
        rng = np.random.default_rng(seed)
        # ~half the gaps are exactly zero → heavy equal-time groups.
        gaps = np.where(rng.random(n) < 0.5, 0.0, rng.random(n) * 2.0)
        times = np.cumsum(gaps + 0.25 * (gaps == 0).astype(float) * 0)
        times = np.maximum.accumulate(times) + 0.5  # non-decreasing, > t0
        servers = rng.integers(0, m, size=n)
        inst = duck(times, servers, m, mu=0.8, lam=1.3)
        assert_identical(inst)
        assert_identical(inst, window_factor=2.0, epoch_size=1)


class TestBatchEquivalence:
    def _insts(self, m=4):
        rng = np.random.default_rng(7)
        out = {}
        for k in range(6):
            n = int(rng.integers(1, 25))
            times = np.cumsum(rng.random(n) + 1e-3)
            out[f"item{k}"] = make_instance(
                times, rng.integers(0, m, size=n), m=m, mu=0.7, lam=1.4
            )
        return out

    def test_layout_matches_per_item(self):
        items = self._insts()
        layout = BatchLayout.from_instances(list(items.items()))
        runs = run_online_layout(layout, 1.0, None)
        assert [r.name for r in runs] == list(items)
        for run, (name, inst) in zip(runs, items.items()):
            solo = run_online_vector(inst, materialize=False)
            assert run.cost == solo.cost
            assert run.counters == solo.counters
            assert run.digest == solo.digest

    def test_run_online_batch_matches_event_runs(self):
        items = self._insts()
        batch = run_online_batch(items, window_factor=2.0, epoch_size=3)
        assert list(batch) == list(items)
        for name, inst in items.items():
            ref = run_online(
                SpeculativeCaching(window_factor=2.0, epoch_size=3),
                inst,
                kernel="event",
            )
            res = batch[name]
            assert res.cost == ref.cost
            assert res.counters == ref.counters
            assert res.schedule.intervals == ref.schedule.intervals
            assert res.schedule.transfers == ref.schedule.transfers
            assert res.lifetimes == ref.lifetimes
            assert decision_digest(res) == decision_digest(ref)

    def test_service_one_kernel_call_matches_per_item(self):
        from repro.service.multi import MultiItemOnlineService

        svc = MultiItemInstance(items=self._insts())
        service = MultiItemOnlineService(SpeculativeCaching)
        vec = service.run(svc, kernel="vector")
        ev = service.run(svc, kernel="event")
        assert vec.total_cost == ev.total_cost
        assert vec.counters() == ev.counters()
        for name in svc.items:
            assert vec.runs[name].cost == ev.runs[name].cost
            assert vec.runs[name].counters == ev.runs[name].counters
            assert (
                vec.runs[name].schedule.transfers
                == ev.runs[name].schedule.transfers
            )

    def test_sweep_layout_rows_match_single_runs(self):
        items = self._insts()
        layout = BatchLayout.from_instances(list(items.items()))
        gammas = [0.5, 1.0, 2.0]
        grid = sweep_layout(layout, gammas, epoch_size=4)
        assert len(grid) == len(gammas)
        for gamma, runs in zip(gammas, grid):
            for run, (name, inst) in zip(runs, items.items()):
                solo = run_online_vector(
                    inst, window_factor=gamma, epoch_size=4, materialize=False
                )
                assert run.cost == solo.cost
                assert run.digest == solo.digest


class TestRandomizedSweep:
    """The ISSUE's 1k-instance exhaustive identity sweep, kept cheap."""

    @pytest.mark.parametrize("gamma", [0.5, 1.0, 2.0])
    @pytest.mark.parametrize("epoch", [None, 1, 8])
    def test_grid_point(self, gamma, epoch):
        rng = np.random.default_rng(hash((gamma, epoch)) % (2**32))
        for _ in range(112):  # 9 grid points × 112 ≈ 1k instances
            n = int(rng.integers(1, 31))
            m = int(rng.integers(1, 6))
            times = np.cumsum(rng.random(n) * 3.0 + 1e-3)
            inst = make_instance(
                times,
                rng.integers(0, m, size=n),
                m=m,
                mu=float(rng.uniform(0.25, 4.0)),
                lam=float(rng.uniform(0.25, 4.0)),
                origin=int(rng.integers(0, m)),
            )
            assert_identical(inst, window_factor=gamma, epoch_size=epoch)
