"""Unit tests for the Speculative Caching state machine."""

import numpy as np
import pytest

from repro import CostModel, ProblemInstance, validate_schedule
from repro.online import SpeculativeCaching

from ..conftest import make_instance


def run_sc(inst, **kwargs):
    return SpeculativeCaching(**kwargs).run(inst)


class TestWindowLogic:
    def test_request_within_window_is_a_hit(self):
        # mu=lam=1 -> window 1; gap 0.5 on the origin.
        inst = make_instance([0.5], [0], m=1)
        run = run_sc(inst)
        assert run.counters["local_hits"] == 1
        assert run.counters["transfers"] == 0

    def test_request_beyond_window_on_lone_copy_still_hits(self):
        # Observation 4, case 2, second bullet: the lone copy was extended
        # past its window; a request on its own server serves locally.
        inst = make_instance([5.0], [0], m=1)
        run = run_sc(inst)
        assert run.counters["local_hits"] == 1
        assert run.counters["transfers"] == 0
        assert run.counters["extensions"] >= 4

    def test_miss_on_other_server_transfers_from_last_requester(self):
        inst = make_instance([1.0, 2.5], [1, 0], m=2)
        run = run_sc(inst)
        assert run.counters["transfers"] == 2
        assert run.transfers[0][1:] == (0, 1)  # from origin to s1
        assert run.transfers[1][1:] == (1, 0)  # from last requester

    def test_window_scales_with_lambda_over_mu(self):
        # lam=4, mu=1 -> window 4: a gap of 3 is still a hit.
        inst = ProblemInstance(
            [(1.0, 1), (4.0, 1)], num_servers=2, cost=CostModel(mu=1.0, lam=4.0)
        )
        run = run_sc(inst)
        assert run.counters["transfers"] == 1  # only the initial move
        assert run.counters["local_hits"] == 1

    def test_window_factor_knob(self):
        # r2 lands back on the origin, whose copy (refreshed as the t=1
        # transfer source) dies at t=2 under the unit window.
        inst = make_instance([1.0, 2.5], [1, 0], m=2)
        assert run_sc(inst).counters["transfers"] == 2
        # A 2x window keeps the origin copy alive until t=3 -> hit.
        assert run_sc(inst, window_factor=2.0).counters["transfers"] == 1


class TestExpirationRules:
    def test_stale_copy_expires_when_others_remain(self):
        inst = make_instance([1.0, 1.2, 5.0], [1, 1, 1], m=2)
        run = run_sc(inst)
        # Origin's copy (refreshed at t=1 as transfer source) dies at 2.0;
        # s1's copy lives on.
        assert run.counters["expirations"] >= 1
        origin_life = [l for l in run.lifetimes if l.server == 0][0]
        assert origin_life.end == pytest.approx(2.0)
        assert origin_life.ended_by == "expire"

    def test_lone_copy_never_dies(self):
        inst = make_instance([10.0], [0], m=3)
        run = run_sc(inst)
        assert run.counters["expirations"] == 0
        assert len(run.lifetimes) == 1

    def test_paired_expiration_keeps_transfer_target(self):
        # Transfer at t=1 (source 0, target 1) -> both expire at t=2.0
        # with c=2: the target (server 1) must survive and serve r2.
        inst = make_instance([1.0, 3.5], [1, 1], m=2)
        run = run_sc(inst)
        origin_life = [l for l in run.lifetimes if l.server == 0][0]
        assert origin_life.ended_by == "expire"
        assert origin_life.end == pytest.approx(2.0)
        s1_lives = [l for l in run.lifetimes if l.server == 1]
        assert len(s1_lives) == 1  # never deleted, extended instead

    def test_speculative_tails_never_exceed_window(self, rng):
        for _ in range(20):
            m = int(rng.integers(2, 6))
            n = int(rng.integers(2, 40))
            t = np.cumsum(rng.uniform(0.05, 3.0, size=n))
            srv = rng.integers(0, m, size=n)
            inst = ProblemInstance.from_arrays(t, srv, num_servers=m)
            run = run_sc(inst)
            dt = inst.cost.speculative_window
            for life in run.lifetimes:
                assert life.tail() <= dt + 1e-9

    def test_no_source_fallback_for_pure_sc(self, rng):
        for _ in range(20):
            m = int(rng.integers(2, 6))
            n = int(rng.integers(2, 40))
            t = np.cumsum(rng.uniform(0.05, 3.0, size=n))
            srv = rng.integers(0, m, size=n)
            inst = ProblemInstance.from_arrays(t, srv, num_servers=m)
            run = run_sc(inst)
            assert run.counters.get("source_fallbacks", 0) == 0


class TestEpochs:
    def test_fig7_epoch_walkthrough(self, fig7):
        run = run_sc(fig7, epoch_size=5)
        assert run.counters["transfers"] == 5
        assert run.counters["local_hits"] == 1
        assert run.counters["epochs"] == 1
        assert run.counters["extensions"] >= 2  # lone survivor on s3

    def test_epoch_reset_deletes_all_but_requester(self, fig7):
        run = run_sc(fig7, epoch_size=5)
        reset_deaths = [l for l in run.lifetimes if l.ended_by == "epoch-reset"]
        assert len(reset_deaths) >= 1
        assert all(l.end == pytest.approx(4.5) for l in reset_deaths)

    def test_epoch_size_one_degenerates_to_reset_per_transfer(self):
        inst = make_instance([1.0, 2.2, 3.4], [1, 0, 1], m=2)
        run = run_sc(inst, epoch_size=1)
        assert run.counters["epochs"] == run.counters["transfers"]

    def test_no_epoch_means_single_unbounded_epoch(self, fig7):
        run = run_sc(fig7, epoch_size=None)
        assert run.counters["epochs"] == 0

    def test_bad_epoch_size_rejected(self):
        with pytest.raises(ValueError):
            SpeculativeCaching(epoch_size=0)

    def test_bad_window_factor_rejected(self):
        with pytest.raises(ValueError):
            SpeculativeCaching(window_factor=-1.0)


class TestRunIntegrity:
    def test_schedules_always_feasible(self, rng):
        for _ in range(25):
            m = int(rng.integers(1, 7))
            n = int(rng.integers(1, 50))
            t = np.cumsum(rng.uniform(0.05, 3.0, size=n))
            srv = rng.integers(0, m, size=n)
            inst = ProblemInstance.from_arrays(t, srv, num_servers=m)
            run = run_sc(inst)
            validate_schedule(run.schedule, inst)

    def test_prefix_consistency_no_lookahead(self):
        # Serving a prefix must produce the same transfers regardless of
        # what comes after (the online information model).
        full = make_instance([1.0, 2.2, 3.1, 9.0], [1, 0, 1, 0], m=2)
        prefix = make_instance([1.0, 2.2, 3.1], [1, 0, 1], m=2)
        run_full = run_sc(full)
        run_prefix = run_sc(prefix)
        assert run_full.transfers[: len(run_prefix.transfers)] == run_prefix.transfers

    def test_deterministic(self, fig7):
        a, b = run_sc(fig7), run_sc(fig7)
        assert a.cost == b.cost
        assert a.counters == b.counters

    def test_name_reflects_window_factor(self):
        assert SpeculativeCaching().name == "speculative-caching"
        assert "ttl" in SpeculativeCaching(window_factor=0.5).name

    def test_cost_equals_schedule_cost(self, fig7):
        run = run_sc(fig7)
        assert run.cost == pytest.approx(run.schedule.total_cost(fig7.cost))
