"""Engine-driven coverage for SC's never-drop-the-last-copy rules.

Observation 4 (case 2) of the paper: when every live copy reaches the
end of its speculative window, the algorithm may not delete them all —
the system must keep at least one copy at all times.  These tests drive
full :func:`repro.run_online` replays (no direct state poking) and
check the surviving copy is the one the tie rules promise.
"""

import pytest

from repro import run_online, validate_schedule
from repro.online import SpeculativeCaching

from ..conftest import make_instance


def run_sc(inst, **kwargs):
    return run_online(SpeculativeCaching(**kwargs), inst)


class TestLoneCopyExtension:
    def test_long_idle_gap_extends_instead_of_deleting(self):
        # Unit window, request after a 9-window silence: the lone origin
        # copy must be flat-extended 9 times, never deleted.
        inst = make_instance([10.0], [0], m=4)
        run = run_sc(inst)
        assert run.counters["extensions"] == 9
        assert run.counters["expirations"] == 0
        assert len(run.lifetimes) == 1
        life = run.lifetimes[0]
        assert life.server == 0
        assert life.start == 0.0
        validate_schedule(run.schedule, inst)

    def test_extended_lone_copy_serves_locally(self):
        inst = make_instance([10.0], [0], m=4)
        run = run_sc(inst)
        assert run.counters["local_hits"] == 1
        assert run.counters["transfers"] == 0

    def test_extension_survivor_becomes_transfer_source(self):
        # After the long extension on server 0, the t=10 request on
        # server 2 must be fed from that surviving copy.
        inst = make_instance([10.0], [2], m=4)
        run = run_sc(inst)
        assert run.transfers[-1][1:] == (0, 2)
        validate_schedule(run.schedule, inst)

    def test_coverage_is_gapless_through_the_idle_stretch(self):
        inst = make_instance([10.0], [0], m=4)
        run = run_sc(inst)
        assert run.schedule.gaps(0.0, 10.0) == []


class TestSimultaneousSourceTargetExpiry:
    """A transfer refreshes both endpoints, so source and target share
    an expiry instant; with c=2 the tie rule keeps the *target*."""

    def test_target_survives_the_tie(self):
        # Transfer 0->1 at t=1, both windows end at t=2; next request at
        # t=3.5 on server 1 must be a local hit on the extended target.
        inst = make_instance([1.0, 3.5], [1, 1], m=2)
        run = run_sc(inst)
        s0 = [l for l in run.lifetimes if l.server == 0]
        s1 = [l for l in run.lifetimes if l.server == 1]
        assert s0[0].ended_by == "expire"
        assert s0[0].end == pytest.approx(2.0)
        assert len(s1) == 1  # target extended, never re-created
        assert run.counters["local_hits"] == 1
        validate_schedule(run.schedule, inst)

    def test_only_one_extension_event_per_group_expiry(self):
        inst = make_instance([1.0, 3.5], [1, 1], m=2)
        run = run_sc(inst)
        # One group hit c floor at t=2 (keep s1), then the survivor was
        # flat-extended alone at t=3.
        assert run.counters["extensions"] == 2

    def test_tie_breaks_toward_latest_transfer_target(self):
        # Chain 0->1 at t=1, then 1->2 at t=1.5: at t=2.5 the surviving
        # pair (1, 2) expires together and server 2 (the newer target)
        # must win the tie and serve the t=4 request locally.
        inst = make_instance([1.0, 1.5, 4.0], [1, 2, 2], m=3)
        run = run_sc(inst)
        assert run.counters["local_hits"] == 1
        assert run.transfers[-1][1:] == (1, 2)  # no third transfer
        s2 = [l for l in run.lifetimes if l.server == 2]
        assert len(s2) == 1
        validate_schedule(run.schedule, inst)


class TestGroupExpiryWithSurplusCopies:
    def test_expiring_subset_deleted_when_others_remain(self):
        # Server 1 is refreshed at t=1.2, origin's copy (refreshed as
        # source at t=1.0) dies alone at t=2.0 — no extension needed.
        inst = make_instance([1.0, 1.2, 5.0], [1, 1, 1], m=2)
        run = run_sc(inst)
        assert run.counters["expirations"] >= 1
        origin = [l for l in run.lifetimes if l.server == 0][0]
        assert origin.ended_by == "expire"
        validate_schedule(run.schedule, inst)

    def test_all_copies_expiring_together_leave_exactly_one(self):
        # Fan out to three servers in quick succession, then go silent:
        # each group expiry must leave exactly one live copy, and the
        # final request is served from it.
        inst = make_instance([1.0, 1.1, 1.2, 9.0], [1, 2, 3, 0], m=4)
        run = run_sc(inst)
        sched = run.schedule
        assert sched.gaps(0.0, 9.0) == []
        # After every event the live-copy count never hits zero; the
        # silence is bridged by exactly one extended copy.
        assert run.counters["extensions"] >= 1
        validate_schedule(sched, inst)

    def test_never_zero_live_copies_at_any_instant(self):
        # Sweep a few compact instances; reconstruct the live-copy count
        # from lifetimes and check it never drops to zero inside the
        # horizon.
        cases = [
            ([1.0, 4.0], [1, 1], 2),
            ([1.0, 1.5, 6.0], [1, 2, 0], 3),
            ([0.5, 0.6, 0.7, 8.0], [1, 2, 3, 2], 4),
        ]
        for times, servers, m in cases:
            inst = make_instance(times, servers, m=m)
            run = run_sc(inst)
            horizon = times[-1]
            probes = [i * horizon / 200.0 for i in range(201)]
            for t in probes:
                live = sum(
                    1 for l in run.lifetimes if l.start <= t <= l.end
                )
                assert live >= 1, f"no live copy at t={t} for {times}"
