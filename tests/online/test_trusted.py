"""Trusted-prediction caching tests (robustness vs. consistency)."""

import math

import numpy as np
import pytest

from repro import solve_offline, validate_schedule
from repro.online import (
    NoisyOracle,
    OracleNextRequest,
    SpeculativeCaching,
    TrustedPredictionCaching,
)
from repro.workloads import poisson_zipf_instance


def panel(n=80, seeds=6):
    insts = [poisson_zipf_instance(n, 5, rate=1.0, rng=s) for s in range(seeds)]
    opts = [solve_offline(i).optimal_cost for i in insts]
    return insts, opts


def mean_ratio(algo_factory, insts, opts):
    return float(
        np.mean([algo_factory().run(i).cost / o for i, o in zip(insts, opts)])
    )


class TestNoisyOracle:
    def test_zero_noise_matches_truth(self, fig6):
        clean = OracleNextRequest()
        noisy = NoisyOracle(noise=0.0, flip_prob=0.0)
        clean.begin(fig6)
        noisy.begin(fig6)
        clean.observe(1, 0.5, 1)
        noisy.observe(1, 0.5, 1)
        for j in range(4):
            assert noisy.predict_next(j, 0.5) == clean.predict_next(j, 0.5)

    def test_full_flip_inverts_verdicts(self, fig6):
        noisy = NoisyOracle(flip_prob=1.0, seed=0)
        noisy.begin(fig6)
        noisy.observe(1, 0.5, 1)
        window = fig6.cost.speculative_window
        # Truth: s3 (server 2 zero-based... server 3) next at 1.1 (timely);
        # flipped -> inf. Truth for a never-again server -> timely.
        assert noisy.predict_next(3, 0.5) == math.inf  # true 1.1, timely
        flipped = noisy.predict_next(1, 0.5)  # true 2.6 > 0.5 + 1 window
        assert flipped - 0.5 <= window

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            NoisyOracle(noise=-1.0)
        with pytest.raises(ValueError):
            NoisyOracle(flip_prob=2.0)

    def test_deterministic_given_seed(self):
        inst = poisson_zipf_instance(60, 4, rate=1.0, rng=0)
        a = TrustedPredictionCaching(NoisyOracle(flip_prob=0.3, seed=5)).run(inst)
        b = TrustedPredictionCaching(NoisyOracle(flip_prob=0.3, seed=5)).run(inst)
        assert a.cost == pytest.approx(b.cost)


class TestTrustedPredictionCaching:
    def test_beta_one_equals_sc(self):
        insts, opts = panel()
        for inst in insts:
            sc = SpeculativeCaching().run(inst).cost
            trusted = TrustedPredictionCaching(
                NoisyOracle(flip_prob=1.0, seed=1), beta=1.0
            ).run(inst).cost
            assert trusted == pytest.approx(sc)

    def test_consistency_good_advice_helps_more_with_small_beta(self):
        insts, opts = panel()
        r_half = mean_ratio(
            lambda: TrustedPredictionCaching(NoisyOracle(seed=2), beta=0.5),
            insts,
            opts,
        )
        r_sc = mean_ratio(lambda: SpeculativeCaching(), insts, opts)
        assert r_half < r_sc

    def test_robustness_bad_advice_hurts_less_with_large_beta(self):
        insts, opts = panel()
        bad = lambda beta: mean_ratio(
            lambda: TrustedPredictionCaching(
                NoisyOracle(flip_prob=1.0, seed=3), beta=beta
            ),
            insts,
            opts,
        )
        assert bad(1.0) < bad(0.25)

    def test_always_feasible(self):
        for seed in range(5):
            inst = poisson_zipf_instance(60, 4, rate=1.5, rng=seed)
            for flip in (0.0, 0.5, 1.0):
                run = TrustedPredictionCaching(
                    NoisyOracle(flip_prob=flip, seed=seed), beta=0.3
                ).run(inst)
                validate_schedule(run.schedule, inst)

    def test_beta_validated(self):
        with pytest.raises(ValueError):
            TrustedPredictionCaching(NoisyOracle(), beta=0.0)
        with pytest.raises(ValueError):
            TrustedPredictionCaching(NoisyOracle(), beta=1.5)

    def test_name_carries_beta(self):
        algo = TrustedPredictionCaching(NoisyOracle(), beta=0.25)
        assert "beta=0.25" in algo.name
