"""Prediction-augmented caching tests."""

import math

import numpy as np
import pytest

from repro import solve_offline, validate_schedule
from repro.online import (
    MarkovPredictor,
    OracleNextRequest,
    PredictiveCaching,
    SpeculativeCaching,
)
from repro.workloads import poisson_zipf_instance

from ..conftest import make_instance


class TestPredictors:
    def test_markov_needs_two_observations(self, fig6):
        p = MarkovPredictor()
        p.begin(fig6)
        p.observe(1, 0.5, 1)
        assert p.predict_next(1, 0.6) == math.inf
        p.observe(5, 2.6, 1)
        assert p.predict_next(1, 2.7) == pytest.approx(2.6 + 2.1)

    def test_markov_prediction_never_in_past(self, fig6):
        p = MarkovPredictor()
        p.begin(fig6)
        p.observe(1, 1.0, 1)
        p.observe(2, 1.5, 1)
        assert p.predict_next(1, 10.0) == 10.0  # clamped to `now`

    def test_markov_alpha_validated(self):
        with pytest.raises(ValueError):
            MarkovPredictor(alpha=0.0)

    def test_oracle_sees_true_future(self, fig6):
        p = OracleNextRequest()
        p.begin(fig6)
        p.observe(1, 0.5, 1)
        assert p.predict_next(1, 0.5) == pytest.approx(2.6)  # r_5 on s1
        assert p.predict_next(3, 0.5) == pytest.approx(1.1)  # r_3 on s3

    def test_oracle_horizon_truncates(self, fig6):
        p = OracleNextRequest(horizon=2)
        p.begin(fig6)
        p.observe(1, 0.5, 1)
        # next use of s1 is r_5, four requests ahead: beyond horizon 2.
        assert p.predict_next(1, 0.5) == math.inf
        assert p.predict_next(2, 0.5) == pytest.approx(0.8)  # r_2, 1 ahead

    def test_oracle_no_future_request(self, fig6):
        p = OracleNextRequest()
        p.begin(fig6)
        p.observe(7, 4.0, 2)
        assert p.predict_next(3, 4.0) == math.inf

    def test_oracle_horizon_validated(self):
        with pytest.raises(ValueError):
            OracleNextRequest(horizon=-1)

    def test_prescient_flags(self):
        assert OracleNextRequest().prescient
        assert not MarkovPredictor().prescient


class TestPredictiveCaching:
    def test_feasible_and_bounded_by_baseline(self, rng):
        for seed in range(8):
            inst = poisson_zipf_instance(80, 5, rate=1.0, rng=seed)
            opt = solve_offline(inst).optimal_cost
            for predictor in (OracleNextRequest(), MarkovPredictor()):
                run = PredictiveCaching(predictor).run(inst)
                validate_schedule(run.schedule, inst)
                assert run.cost >= opt - 1e-6

    def test_oracle_beats_sc_on_average(self):
        insts = [poisson_zipf_instance(100, 5, rate=1.0, rng=s) for s in range(8)]
        opts = [solve_offline(i).optimal_cost for i in insts]
        sc = np.mean(
            [SpeculativeCaching().run(i).cost / o for i, o in zip(insts, opts)]
        )
        oracle = np.mean(
            [
                PredictiveCaching(OracleNextRequest()).run(i).cost / o
                for i, o in zip(insts, opts)
            ]
        )
        assert oracle < sc

    def test_zero_lookahead_equals_sc_shape(self):
        # horizon=0: the oracle never predicts a next use, every copy is
        # dropped immediately after use except the protected last copy.
        inst = make_instance([1.0, 2.5, 4.0], [1, 0, 1], m=2)
        run = PredictiveCaching(OracleNextRequest(horizon=0)).run(inst)
        validate_schedule(run.schedule, inst)
        # all non-final lifetimes have zero tails
        for life in run.lifetimes[:-1]:
            if life.ended_by == "expire":
                assert life.tail() <= 1e-9 or life.tail() <= inst.cost.lam

    def test_wrong_predictor_still_feasible(self):
        class AlwaysNever(OracleNextRequest):
            def predict_next(self, server, now):
                return math.inf

        inst = poisson_zipf_instance(60, 4, rate=2.0, rng=3)
        run = PredictiveCaching(AlwaysNever()).run(inst)
        validate_schedule(run.schedule, inst)

    def test_names_distinguish_variants(self):
        assert "oracle" in PredictiveCaching(OracleNextRequest()).name
        assert "lookahead(3)" in PredictiveCaching(OracleNextRequest(horizon=3)).name
        assert "markov" in PredictiveCaching(MarkovPredictor()).name

    def test_lookahead_monotone_in_horizon_on_average(self):
        insts = [poisson_zipf_instance(100, 5, rate=1.0, rng=s) for s in range(8)]
        opts = [solve_offline(i).optimal_cost for i in insts]

        def mean_ratio(k):
            return np.mean(
                [
                    PredictiveCaching(OracleNextRequest(horizon=k)).run(i).cost / o
                    for i, o in zip(insts, opts)
                ]
            )

        # More lookahead can only help (on average, by a margin).
        assert mean_ratio(20) <= mean_ratio(1) + 0.02

    def test_deterministic(self, fig7):
        a = PredictiveCaching(MarkovPredictor()).run(fig7)
        b = PredictiveCaching(MarkovPredictor()).run(fig7)
        assert a.cost == pytest.approx(b.cost)

    def test_honest_predictor_prefix_consistency(self):
        full = make_instance([1.0, 2.2, 3.1, 9.0], [1, 0, 1, 0], m=2)
        prefix = make_instance([1.0, 2.2, 3.1], [1, 0, 1], m=2)
        rf = PredictiveCaching(MarkovPredictor()).run(full)
        rp = PredictiveCaching(MarkovPredictor()).run(prefix)
        assert rf.transfers[: len(rp.transfers)] == rp.transfers
