"""Hypothesis property suite for the online stack."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import double_transfer, solve_offline
from repro.online import (
    NoisyOracle,
    SpeculativeCaching,
    TrustedPredictionCaching,
    verify_theorem3,
)
from repro.schedule import validate_schedule

from ..conftest import instances

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSCProperties:
    @given(instances(max_m=4, max_n=20))
    @settings(**_SETTINGS)
    def test_dt_identity(self, inst):
        run = SpeculativeCaching().run(inst)
        dt = double_transfer(run, inst)
        assert dt.total_cost == pytest.approx(run.cost, rel=1e-9, abs=1e-9)
        lam = inst.cost.lam
        for tr in dt.schedule.transfers:
            assert lam - 1e-9 <= tr.weight <= 2 * lam + 1e-9

    @given(instances(max_m=4, max_n=20))
    @settings(**_SETTINGS)
    def test_theorem3_chain(self, inst):
        rep = verify_theorem3(inst)
        assert rep.holds()

    @given(instances(max_m=4, max_n=20))
    @settings(**_SETTINGS)
    def test_tails_bounded_by_window(self, inst):
        run = SpeculativeCaching().run(inst)
        window = inst.cost.speculative_window
        for life in run.lifetimes:
            assert life.tail() <= window + 1e-9

    @given(
        instances(max_m=4, max_n=15),
        st.integers(min_value=1, max_value=6),
    )
    @settings(**_SETTINGS)
    def test_epoched_runs_feasible_and_bounded(self, inst, epoch):
        run = SpeculativeCaching(epoch_size=epoch).run(inst)
        validate_schedule(run.schedule, inst)
        assert run.cost <= 3.0 * solve_offline(inst).optimal_cost + 1e-6

    @given(
        instances(max_m=4, max_n=15),
        st.floats(min_value=0.2, max_value=5.0, allow_nan=False),
    )
    @settings(**_SETTINGS)
    def test_ttl_family_always_feasible(self, inst, gamma):
        run = SpeculativeCaching(window_factor=gamma).run(inst)
        validate_schedule(run.schedule, inst)
        assert run.cost >= solve_offline(inst).optimal_cost - 1e-6


class TestTrustedProperties:
    @given(
        instances(max_m=4, max_n=15),
        st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(**_SETTINGS)
    def test_any_beta_any_corruption_feasible(self, inst, beta, flip):
        algo = TrustedPredictionCaching(
            NoisyOracle(flip_prob=flip, seed=0), beta=beta
        )
        run = algo.run(inst)
        validate_schedule(run.schedule, inst)
        assert run.cost >= solve_offline(inst).optimal_cost - 1e-6
