"""Double-Transfer transformation tests (Definition 10)."""

import numpy as np
import pytest

from repro import ProblemInstance, double_transfer
from repro.online import SpeculativeCaching

from ..conftest import make_instance


def sc_run(inst, **kw):
    return SpeculativeCaching(**kw).run(inst)


class TestCostIdentity:
    def test_pi_dt_equals_pi_sc_on_fig7(self, fig7):
        run = sc_run(fig7, epoch_size=5)
        dt = double_transfer(run, fig7)
        assert dt.total_cost == pytest.approx(run.cost)

    def test_pi_dt_equals_pi_sc_random(self, rng):
        for _ in range(25):
            m = int(rng.integers(1, 6))
            n = int(rng.integers(1, 40))
            t = np.cumsum(rng.uniform(0.05, 3.0, size=n))
            srv = rng.integers(0, m, size=n)
            inst = ProblemInstance.from_arrays(t, srv, num_servers=m)
            run = sc_run(inst)
            dt = double_transfer(run, inst)
            assert dt.total_cost == pytest.approx(run.cost)


class TestStructure:
    def test_transfer_weights_bounded_by_two_lambda(self, rng):
        for _ in range(15):
            m = int(rng.integers(2, 6))
            n = int(rng.integers(2, 40))
            t = np.cumsum(rng.uniform(0.05, 3.0, size=n))
            srv = rng.integers(0, m, size=n)
            inst = ProblemInstance.from_arrays(t, srv, num_servers=m)
            dt = double_transfer(sc_run(inst), inst)
            lam = inst.cost.lam
            for tr in dt.schedule.transfers:
                assert tr.weight is not None
                assert lam - 1e-9 <= tr.weight <= 2 * lam + 1e-9

    def test_omegas_bounded_by_lambda(self, fig7):
        dt = double_transfer(sc_run(fig7), fig7)
        assert all(0.0 <= w <= fig7.cost.lam + 1e-9 for w in dt.omegas)

    def test_initial_cost_is_origin_tail(self):
        # Single request on another server: the origin copy is refreshed
        # at t=1 as transfer source and truncated at t_n=1 -> tail 0; the
        # initial tail before that... the origin lifetime's last refresh
        # is t=1 = t_n, so initial cost is 0 here.
        inst = make_instance([1.0], [1], m=2)
        dt = double_transfer(sc_run(inst), inst)
        assert dt.initial_cost == pytest.approx(0.0)

    def test_initial_cost_positive_when_origin_idles(self):
        # Origin serves r_1 as source at t=1; r_2 far away on s1; origin's
        # copy expires at t=2 with a full tail of Δt = 1.
        inst = make_instance([1.0, 5.0], [1, 1], m=2)
        dt = double_transfer(sc_run(inst), inst)
        assert dt.initial_cost == pytest.approx(1.0)

    def test_grid_alignment(self, fig7):
        # Every DT interval endpoint is a request instant or t_0.
        dt = double_transfer(sc_run(fig7), fig7)
        grid = {float(t) for t in fig7.t}
        for iv in dt.schedule.intervals:
            assert any(abs(iv.start - g) <= 1e-9 for g in grid)
            assert any(abs(iv.end - g) <= 1e-9 for g in grid)

    def test_ttl_variant_needs_wider_bound(self):
        inst = make_instance([1.0, 2.5, 6.0], [1, 0, 1], m=2)
        run = SpeculativeCaching(window_factor=2.0).run(inst)
        dt = double_transfer(run, inst, max_window_cost=2.0 * inst.cost.lam)
        assert dt.total_cost == pytest.approx(run.cost)

    def test_caching_shrinks_transfers_grow(self, fig7):
        run = sc_run(fig7)
        dt = double_transfer(run, fig7)
        model = fig7.cost
        assert dt.schedule.caching_cost(model) <= run.schedule.caching_cost(model) + 1e-9
        assert dt.schedule.transfer_cost(model) >= run.schedule.transfer_cost(model) - 1e-9
