"""Sanity of the pinned paper fixtures themselves."""

import numpy as np
import pytest

from repro.paperdata import (
    FIG2_EXPECTED,
    FIG2_REQUESTS,
    FIG6_EXPECTED,
    FIG6_REQUESTS,
    FIG7_REQUESTS,
    fig2_instance,
    fig6_instance,
    fig7_instance,
)


class TestFig6Fixture:
    def test_shape(self):
        inst = fig6_instance()
        assert inst.n == len(FIG6_REQUESTS) == 7
        assert inst.num_servers == 4
        assert inst.cost.mu == inst.cost.lam == 1.0

    def test_expected_tables_are_consistent(self):
        # B must be the prefix sum of b within the pinned constants.
        b = FIG6_EXPECTED["b"]
        B = FIG6_EXPECTED["B"]
        assert np.allclose(np.cumsum(b), B)

    def test_expected_C_matches_optimal_claim(self):
        assert FIG6_EXPECTED["C"][-1] == FIG6_EXPECTED["optimal_cost"]

    def test_min_D7_candidate_is_D7(self):
        assert min(FIG6_EXPECTED["D7_candidates"]) == FIG6_EXPECTED[
            "D_finite"
        ][7]

    def test_pivot_intervals_reference_real_requests(self):
        inst = fig6_instance()
        times = set(float(t) for t in inst.t)
        for lo, hi in FIG6_EXPECTED["pivot_intervals_at_t_p7"].values():
            assert lo in times and hi in times


class TestFig2Fixture:
    def test_decomposition_adds_up(self):
        assert FIG2_EXPECTED["caching_cost"] + FIG2_EXPECTED[
            "transfer_cost"
        ] == pytest.approx(FIG2_EXPECTED["optimal_cost"])

    def test_shape(self):
        inst = fig2_instance()
        assert inst.n == len(FIG2_REQUESTS)
        assert inst.num_servers == 3


class TestFig7Fixture:
    def test_shape(self):
        inst = fig7_instance()
        assert inst.n == len(FIG7_REQUESTS)
        assert inst.num_servers == 4

    def test_contains_window_hit_and_long_gap(self):
        # The walkthrough needs: one gap under the unit window on a
        # revisited server, and one gap long enough to expire everything.
        inst = fig7_instance()
        gaps = np.diff(inst.t)
        assert gaps.min() < 1.0
        assert gaps.max() > 2.0
