"""Property-based tests tying all off-line solvers together."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (
    solve_exact,
    solve_offline,
    solve_offline_bisect,
    solve_offline_naive,
    validate_schedule,
)
from repro.schedule import is_standard_form, migration_only_cost, schedule_edge_cost

from ..conftest import instances

_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestOptimality:
    @given(instances(max_m=4, max_n=12))
    @settings(**_SETTINGS)
    def test_dp_equals_exact_oracle(self, inst):
        fast = solve_offline(inst).optimal_cost
        exact = solve_exact(inst, build_schedule=False).optimal_cost
        assert fast == pytest.approx(exact, rel=1e-9, abs=1e-9)

    @given(instances())
    @settings(**_SETTINGS)
    def test_all_dp_variants_agree(self, inst):
        fast = solve_offline(inst)
        assert fast.agrees_with(solve_offline_naive(inst))
        assert fast.agrees_with(solve_offline_bisect(inst))

    @given(instances())
    @settings(**_SETTINGS)
    def test_running_bound_is_a_lower_bound(self, inst):
        res = solve_offline(inst)
        assert inst.running_bound() <= res.optimal_cost + 1e-9

    @given(instances())
    @settings(**_SETTINGS)
    def test_migration_only_is_an_upper_bound(self, inst):
        assert (
            solve_offline(inst).optimal_cost
            <= migration_only_cost(inst) + 1e-9
        )


class TestReconstruction:
    @given(instances())
    @settings(**_SETTINGS)
    def test_schedule_feasible_standard_and_exact_cost(self, inst):
        res = solve_offline(inst)
        sched = res.schedule()  # raises internally if cost identity breaks
        validate_schedule(sched, inst)
        assert is_standard_form(sched, inst)
        assert schedule_edge_cost(sched, inst) == pytest.approx(
            res.optimal_cost, rel=1e-9, abs=1e-9
        )

    @given(instances(max_m=4, max_n=12))
    @settings(**_SETTINGS)
    def test_exact_oracle_schedule_feasible(self, inst):
        ex = solve_exact(inst)
        validate_schedule(ex.schedule, inst)
        assert ex.schedule.total_cost(inst.cost) == pytest.approx(
            ex.optimal_cost, rel=1e-9, abs=1e-9
        )


class TestStability:
    @given(instances())
    @settings(**_SETTINGS)
    def test_time_shift_invariance(self, inst):
        # Shifting all request times by a constant shifts nothing: costs
        # depend only on gaps.
        import repro

        shifted = repro.ProblemInstance.from_arrays(
            inst.t[1:] + 7.25,
            inst.srv[1:],
            num_servers=inst.num_servers,
            cost=inst.cost,
            origin=inst.origin,
            start_time=float(inst.t[0]) + 7.25,
        )
        assert solve_offline(shifted).optimal_cost == pytest.approx(
            solve_offline(inst).optimal_cost, rel=1e-9, abs=1e-9
        )

    @given(instances())
    @settings(**_SETTINGS)
    def test_cost_scale_invariance(self, inst):
        # Scaling both mu and lam by c scales the optimum by c.
        import repro

        c = 3.5
        scaled = repro.ProblemInstance.from_arrays(
            inst.t[1:],
            inst.srv[1:],
            num_servers=inst.num_servers,
            cost=repro.CostModel(mu=inst.cost.mu * c, lam=inst.cost.lam * c),
            origin=inst.origin,
            start_time=float(inst.t[0]),
        )
        assert solve_offline(scaled).optimal_cost == pytest.approx(
            c * solve_offline(inst).optimal_cost, rel=1e-9, abs=1e-9
        )
