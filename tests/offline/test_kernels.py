"""Differential suite for ``repro.kernels`` — bit-identity, not approx.

The kernels are throughput knobs, never semantics knobs: every test here
compares *bytes*, not ``pytest.approx``.  Three layers:

* frontier DP kernel vs the reference sweep (scalar and vectorized),
  including tie-heavy integer-gap instances and single-server
  degenerate cases;
* the vectorized pre-scan vs its loop reference twins;
* the streaming solver (both kernels) vs the batch solver on the same
  prefix.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CostModel, ProblemInstance, solve_offline
from repro.kernels import solve_offline_frontier
from repro.kernels.prescan import (
    build_pivot_matrix,
    build_pivot_matrix_reference,
    per_server_lists,
    prescan_arrays,
    prev_same_server,
    prev_same_server_reference,
)
from repro.offline.streaming import StreamingSolver

from ..conftest import instances, make_instance

_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tie_heavy_instances(draw, max_m: int = 4, max_n: int = 24):
    """Integer gaps with ``mu = lam = 1``: many exactly-equal D candidates.

    Equal *values* are where argmin tie-breaking can silently diverge
    between kernels, so this strategy manufactures them on purpose.
    """
    m = draw(st.integers(min_value=1, max_value=max_m))
    n = draw(st.integers(min_value=1, max_value=max_n))
    gaps = draw(
        st.lists(st.integers(min_value=1, max_value=3), min_size=n, max_size=n)
    )
    servers = draw(
        st.lists(st.integers(min_value=0, max_value=m - 1), min_size=n, max_size=n)
    )
    origin = draw(st.integers(min_value=0, max_value=m - 1))
    return ProblemInstance.from_arrays(
        np.cumsum(np.asarray(gaps, dtype=float)),
        np.asarray(servers, dtype=int),
        num_servers=m,
        cost=CostModel(mu=1.0, lam=1.0),
        origin=origin,
    )


def assert_bit_identical(a, b):
    """Every result field byte-identical; schedules exactly equal."""
    assert a.C.tobytes() == b.C.tobytes()
    assert a.D.tobytes() == b.D.tobytes()
    assert a.served_by_cache.tobytes() == b.served_by_cache.tobytes()
    assert a.choice_d_tag.tobytes() == b.choice_d_tag.tobytes()
    assert a.choice_d_k.tobytes() == b.choice_d_k.tobytes()
    sa, sb = a.schedule(), b.schedule()
    assert sa.transfers == sb.transfers
    assert sa.intervals == sb.intervals
    cost = a.instance.cost
    assert sa.total_cost(cost) == sb.total_cost(cost)


class TestFrontierVsReference:
    @given(instances())
    @settings(**_SETTINGS)
    def test_random_instances(self, inst):
        ref = solve_offline(inst, kernel="reference")
        assert_bit_identical(ref, solve_offline_frontier(inst))

    @given(tie_heavy_instances())
    @settings(**_SETTINGS)
    def test_tie_heavy_instances(self, inst):
        ref = solve_offline(inst, kernel="reference")
        assert_bit_identical(ref, solve_offline_frontier(inst))

    @given(instances(max_m=1, max_n=30))
    @settings(**_SETTINGS)
    def test_single_server_degenerate(self, inst):
        assert inst.num_servers == 1
        ref = solve_offline(inst, kernel="reference")
        assert_bit_identical(ref, solve_offline_frontier(inst))

    @given(instances(max_m=6, max_n=40))
    @settings(**_SETTINGS)
    def test_vectorized_reference_also_identical(self, inst):
        # Three-way: scalar reference == vectorized reference == frontier.
        scalar = solve_offline(inst, vectorized=False, kernel="reference")
        assert_bit_identical(
            scalar, solve_offline(inst, vectorized=True, kernel="reference")
        )
        assert_bit_identical(scalar, solve_offline(inst, kernel="frontier"))

    def test_kernel_auto_routes_to_frontier(self):
        inst = make_instance([1.0, 2.0, 3.5], [0, 1, 0], m=2)
        auto = solve_offline(inst)  # kernel="auto"
        assert_bit_identical(auto, solve_offline_frontier(inst))

    def test_bad_kernel_rejected(self):
        inst = make_instance([1.0], [0], m=1)
        with pytest.raises(ValueError, match="kernel"):
            solve_offline(inst, kernel="warp")
        with pytest.raises(ValueError, match="vectorized"):
            solve_offline(inst, vectorized=True, kernel="frontier")


@st.composite
def server_vectors(draw, max_m: int = 6, max_n: int = 40):
    m = draw(st.integers(min_value=1, max_value=max_m))
    n1 = draw(st.integers(min_value=1, max_value=max_n))
    servers = draw(
        st.lists(
            st.integers(min_value=0, max_value=m - 1), min_size=n1, max_size=n1
        )
    )
    return np.asarray(servers, dtype=np.int64), m


class TestPrescanVsReferenceTwins:
    @given(server_vectors())
    @settings(**_SETTINGS)
    def test_prev_same_server(self, sv):
        servers, m = sv
        fast = prev_same_server(servers)
        ref = prev_same_server_reference(per_server_lists(servers, m), servers.shape[0])
        assert fast.tobytes() == ref.tobytes()

    @given(server_vectors())
    @settings(**_SETTINGS)
    def test_pivot_matrix(self, sv):
        servers, m = sv
        fast = build_pivot_matrix(servers, m)
        ref = build_pivot_matrix_reference(servers, m)
        assert fast.shape == ref.shape
        assert fast.tobytes() == ref.tobytes()

    @given(instances())
    @settings(**_SETTINGS)
    def test_prescan_arrays_match_instance(self, inst):
        # The instance constructor consumes prescan_arrays; re-deriving
        # from the raw vectors must reproduce its arrays bit-for-bit.
        p, sigma, b, B = prescan_arrays(
            inst.t, inst.srv, inst.cost.mu, inst.cost.lam
        )
        assert p.tobytes() == inst.p.tobytes()
        assert sigma.tobytes() == inst.sigma.tobytes()
        assert b.tobytes() == inst.b.tobytes()
        assert B.tobytes() == inst.B.tobytes()


class TestStreamingVsBatch:
    @given(instances(), st.sampled_from(["frontier", "reference"]))
    @settings(**_SETTINGS)
    def test_streaming_prefix_equals_batch(self, inst, kernel):
        solver = StreamingSolver(
            inst.num_servers,
            cost=inst.cost,
            origin=inst.origin,
            start_time=float(inst.t[0]),
            kernel=kernel,
        )
        for i in range(1, inst.n + 1):
            solver.append(float(inst.t[i]), int(inst.srv[i]))
        res = solver.result()
        batch = solve_offline(inst, kernel="reference")
        assert res.C.tobytes() == batch.C.tobytes()
        assert res.D.tobytes() == batch.D.tobytes()
        assert (
            res.served_by_cache.tobytes() == batch.served_by_cache.tobytes()
        )
        assert res.choice_d_tag.tobytes() == batch.choice_d_tag.tobytes()
        assert res.choice_d_k.tobytes() == batch.choice_d_k.tobytes()

    @given(tie_heavy_instances())
    @settings(**_SETTINGS)
    def test_streaming_frontier_on_ties(self, inst):
        solver = StreamingSolver(
            inst.num_servers,
            cost=inst.cost,
            origin=inst.origin,
            start_time=float(inst.t[0]),
        )
        solver.extend(
            (float(inst.t[i]), int(inst.srv[i])) for i in range(1, inst.n + 1)
        )
        res = solver.result()
        batch = solve_offline_frontier(inst)
        assert res.C.tobytes() == batch.C.tobytes()
        assert res.choice_d_k.tobytes() == batch.choice_d_k.tobytes()
