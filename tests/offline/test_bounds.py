"""Bound utilities tests."""

import numpy as np
import pytest

from repro.offline import bound_report, marginal_bounds, running_bound

from ..conftest import make_instance


class TestBounds:
    def test_marginal_bounds_are_instance_b(self, fig6):
        assert np.array_equal(marginal_bounds(fig6), fig6.b)

    def test_running_bound_fig6(self, fig6):
        assert running_bound(fig6) == pytest.approx(6.6)

    def test_report_gap_nonnegative(self, fig6):
        rep = bound_report(fig6)
        assert rep.gap >= 0
        assert rep.optimal_cost == pytest.approx(8.9)
        assert rep.lower_bound == pytest.approx(6.6)
        assert rep.ratio == pytest.approx(8.9 / 6.6)

    def test_tight_bound_case(self):
        # A single far-away request: optimum = mu*t + lam; bound = lam.
        inst = make_instance([10.0], [1], m=2)
        rep = bound_report(inst)
        assert rep.lower_bound == pytest.approx(1.0)
        assert rep.optimal_cost == pytest.approx(11.0)

    def test_empty_instance_ratio_inf(self):
        inst = make_instance([], [], m=1)
        rep = bound_report(inst)
        assert rep.lower_bound == 0.0 and rep.ratio == float("inf")
