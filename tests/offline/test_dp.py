"""Unit tests for the fast O(mn) DP and its reference solvers."""

import numpy as np
import pytest

from repro import (
    CostModel,
    ProblemInstance,
    optimal_cost,
    solve_offline,
    solve_offline_bisect,
    solve_offline_naive,
)
from repro.schedule import migration_only_cost

from ..conftest import make_instance
from .test_kernels import assert_bit_identical


class TestBasics:
    def test_single_request_on_origin(self):
        inst = make_instance([2.0], [0], m=1)
        # Cache on the origin through the gap: cost = mu * 2.
        assert solve_offline(inst).optimal_cost == pytest.approx(2.0)

    def test_single_request_elsewhere(self):
        inst = make_instance([2.0], [1], m=2)
        # Cache the origin copy then transfer: mu*2 + lam.
        assert solve_offline(inst).optimal_cost == pytest.approx(3.0)

    def test_empty_sequence_costs_zero(self):
        inst = make_instance([], [], m=2)
        assert solve_offline(inst).optimal_cost == 0.0

    def test_costs_scale_with_mu(self):
        a = make_instance([1.0], [0], m=1, mu=1.0)
        b = make_instance([1.0], [0], m=1, mu=5.0)
        assert solve_offline(b).optimal_cost == pytest.approx(
            5.0 * solve_offline(a).optimal_cost
        )

    def test_optimal_cost_wrapper(self, fig6):
        assert optimal_cost(fig6) == pytest.approx(8.9)

    def test_same_server_consecutive_never_transfers(self):
        # s_i == s_{i-1}: the cache branch is strictly cheaper, so the
        # reconstruction must not emit a self-transfer (it would raise).
        inst = make_instance([1.0, 1.5, 2.0, 2.5], [1, 1, 1, 1], m=2)
        sched = solve_offline(inst).schedule()
        assert all(tr.src != tr.dst for tr in sched.transfers)

    def test_lower_bound_holds(self, fig6, fig2, fig7):
        for inst in (fig6, fig2, fig7):
            res = solve_offline(inst)
            assert res.lower_bound <= res.optimal_cost + 1e-12

    def test_monotone_C(self, fig6):
        # Serving more requests can never cost less.
        res = solve_offline(fig6)
        assert np.all(np.diff(res.C) >= -1e-12)


class TestSolverAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_three_solvers_agree_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 8))
        n = int(rng.integers(1, 60))
        t = np.cumsum(rng.uniform(0.01, 3.0, size=n))
        srv = rng.integers(0, m, size=n)
        inst = ProblemInstance.from_arrays(
            t,
            srv,
            num_servers=m,
            cost=CostModel(
                mu=float(rng.uniform(0.2, 4.0)), lam=float(rng.uniform(0.2, 4.0))
            ),
        )
        fast = solve_offline(inst)
        assert fast.agrees_with(solve_offline_naive(inst))
        assert fast.agrees_with(solve_offline_bisect(inst))

    def test_vectorized_and_scalar_paths_agree(self, rng):
        t = np.cumsum(rng.uniform(0.05, 1.0, size=120))
        srv = rng.integers(0, 60, size=120)
        inst = ProblemInstance.from_arrays(t, srv, num_servers=60)
        a = solve_offline(inst, vectorized=True, kernel="reference")
        b = solve_offline(inst, vectorized=False, kernel="reference")
        assert a.agrees_with(b)

    def test_unknown_vectorized_string_rejected(self, rng):
        # Regression: any non-"auto" string is truthy, so
        # vectorized="false" used to silently behave as vectorized=True.
        t = np.cumsum(rng.uniform(0.05, 1.0, size=10))
        srv = rng.integers(0, 4, size=10)
        inst = ProblemInstance.from_arrays(t, srv, num_servers=4)
        for bad in ("false", "true", "False", "yes", ""):
            with pytest.raises(ValueError, match="vectorized"):
                solve_offline(inst, vectorized=bad)
        assert solve_offline(inst, vectorized="auto").agrees_with(
            solve_offline(inst, vectorized=False, kernel="reference")
        )

    @pytest.mark.parametrize("vectorized", [True, False, "auto"])
    @pytest.mark.parametrize("kernel", ["auto", "frontier", "reference", "batch"])
    def test_dispatch_matrix(self, rng, vectorized, kernel):
        # Every (vectorized, kernel) combination either solves
        # bit-identically to the scalar reference, warns, or raises —
        # never silently downgrades.  Regression for the knob matrix: an
        # explicit bool with kernel="auto" used to silently pin the
        # reference kernel.
        t = np.cumsum(rng.uniform(0.05, 1.0, size=40))
        srv = rng.integers(0, 5, size=40)
        inst = ProblemInstance.from_arrays(t, srv, num_servers=5)
        golden = solve_offline(inst, vectorized=False, kernel="reference")
        if isinstance(vectorized, bool) and kernel in ("frontier", "batch"):
            with pytest.raises(ValueError, match="vectorized"):
                solve_offline(inst, vectorized=vectorized, kernel=kernel)
            return
        if isinstance(vectorized, bool) and kernel == "auto":
            with pytest.warns(UserWarning, match="kernel='reference'"):
                res = solve_offline(inst, vectorized=vectorized, kernel=kernel)
        else:
            res = solve_offline(inst, vectorized=vectorized, kernel=kernel)
        assert_bit_identical(golden, res)

    def test_explicit_bool_with_kernel_auto_warns(self, rng):
        t = np.cumsum(rng.uniform(0.05, 1.0, size=10))
        srv = rng.integers(0, 3, size=10)
        inst = ProblemInstance.from_arrays(t, srv, num_servers=3)
        with pytest.warns(UserWarning, match="pins kernel='reference'"):
            solve_offline(inst, vectorized=True)
        # Naming the reference kernel explicitly keeps the bool silent.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            solve_offline(inst, vectorized=True, kernel="reference")
            solve_offline(inst, vectorized=False, kernel="reference")

    def test_bisect_pivot_mode_instance(self, rng):
        t = np.cumsum(rng.uniform(0.05, 1.0, size=50))
        srv = rng.integers(0, 5, size=50)
        a = ProblemInstance.from_arrays(t, srv, num_servers=5, pivot_mode="matrix")
        b = ProblemInstance.from_arrays(t, srv, num_servers=5, pivot_mode="bisect")
        assert solve_offline(a).agrees_with(solve_offline(b))


class TestAgainstBaselines:
    def test_never_above_migration_only(self, rng):
        for _ in range(20):
            m = int(rng.integers(1, 6))
            n = int(rng.integers(1, 30))
            t = np.cumsum(rng.uniform(0.05, 2.0, size=n))
            srv = rng.integers(0, m, size=n)
            inst = ProblemInstance.from_arrays(t, srv, num_servers=m)
            assert (
                solve_offline(inst).optimal_cost
                <= migration_only_cost(inst) + 1e-9
            )

    def test_replication_strictly_helps_sometimes(self):
        # Two servers ping-ponging with tiny gaps: caching both is far
        # cheaper than migrating every time.
        seq = []
        t = 0.0
        for k in range(10):
            t += 0.1
            seq.append((t, k % 2))
        inst = ProblemInstance(seq, num_servers=2, cost=CostModel(1.0, 1.0))
        assert solve_offline(inst).optimal_cost < migration_only_cost(inst) - 0.5


class TestResultObject:
    def test_repr(self, fig6):
        r = repr(solve_offline(fig6))
        assert "fast-dp" in r and "C(n)=8.9" in r

    def test_schedule_is_cached(self, fig6):
        res = solve_offline(fig6)
        assert res.schedule() is res.schedule()

    def test_agrees_with_tolerates_infinities(self, fig6):
        a, b = solve_offline(fig6), solve_offline_naive(fig6)
        assert a.agrees_with(b)
        assert b.agrees_with(a)
