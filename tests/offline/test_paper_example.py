"""Exact reproduction of the paper's worked numbers (Figs. 2, 5, 6).

Every assertion here corresponds to a number printed in the paper's text;
EXPERIMENTS.md cross-references this module.
"""

import numpy as np
import pytest

from repro import solve_offline, solve_offline_naive, validate_schedule
from repro.offline.result import FROM_D
from repro.paperdata import FIG2_EXPECTED, FIG6_EXPECTED


class TestFig6CostVectors:
    def test_C_vector(self, fig6):
        res = solve_offline(fig6)
        assert np.allclose(res.C, FIG6_EXPECTED["C"], atol=1e-9)

    def test_D_vector_finite_part(self, fig6):
        res = solve_offline(fig6)
        for i, want in FIG6_EXPECTED["D_finite"].items():
            assert res.D[i] == pytest.approx(want)

    def test_D_infinite_for_first_requests(self, fig6):
        res = solve_offline(fig6)
        assert np.all(np.isinf(res.D[1:4]))  # first hits on s^2, s^3, s^4

    def test_marginal_and_running_bounds(self, fig6):
        assert np.allclose(fig6.b, FIG6_EXPECTED["b"])
        assert np.allclose(fig6.B, FIG6_EXPECTED["B"])

    def test_optimal_cost_is_8_9(self, fig6):
        assert solve_offline(fig6).optimal_cost == pytest.approx(8.9)

    def test_intermediate_worked_values(self, fig6):
        # C(1) = min{D(1), C(0)+1+0.5} = 1.5 ... C(4) = 4.4 as in the text.
        res = solve_offline(fig6)
        assert res.C[1] == pytest.approx(1.5)
        assert res.C[2] == pytest.approx(2.8)
        assert res.C[3] == pytest.approx(4.1)
        assert res.C[4] == pytest.approx(4.4)
        assert res.D[4] == pytest.approx(4.4)  # D(4) = C(0) + 1.4 + 3 - 0

    def test_D7_candidate_enumeration(self, fig6):
        # The paper enumerates D(7) candidates 9.6, 9.2, 10.3, 10.3 (it
        # prints 10.03 — an obvious typo for 10.3) and picks 9.2 via κ=4.
        res = solve_offline(fig6)
        mu_sigma7 = fig6.cost.mu * fig6.sigma[7]
        B6 = fig6.B[6]
        base = res.C[fig6.p[7]] + mu_sigma7 + B6 - fig6.B[fig6.p[7]]
        assert base == pytest.approx(9.6)
        pivot_vals = {
            k: float(res.D[k] + mu_sigma7 + B6 - fig6.B[k])
            for k in (4, 5)
        }
        assert pivot_vals[4] == pytest.approx(9.2)
        assert pivot_vals[5] == pytest.approx(10.3)
        assert res.D[7] == pytest.approx(9.2)
        assert res.choice_d_tag[7] == FROM_D
        assert res.choice_d_k[7] == 4  # the paper's pivot κ = 4

    def test_C7_takes_transfer_branch(self, fig6):
        # C(7) = min{D(7)=9.2, C(6)+0.8+1=8.9} = 8.9 — transfer wins.
        res = solve_offline(fig6)
        assert not res.served_by_cache[7]
        assert res.C[7] == pytest.approx(res.C[6] + 0.8 + 1.0)

    def test_pivot_intervals_match_fig5(self, fig6):
        # Fig. 5: the intervals containing t_{p(7)} = 0.8 are [0, 1.4] on
        # s^1 and [0.5, 2.6] on s^2.
        for k, (lo, hi) in FIG6_EXPECTED["pivot_intervals_at_t_p7"].items():
            ks = [
                kk
                for kk in fig6.cover_set(7)
                if int(fig6.srv[kk]) == k
            ]
            assert len(ks) == 1
            kk = ks[0]
            assert float(fig6.t[fig6.p[kk]]) == pytest.approx(lo)
            assert float(fig6.t[kk]) == pytest.approx(hi)

    def test_naive_solver_reproduces_the_same_table(self, fig6):
        res = solve_offline_naive(fig6)
        assert np.allclose(res.C, FIG6_EXPECTED["C"])


class TestFig2Decomposition:
    def test_total_cost(self, fig2):
        assert solve_offline(fig2).optimal_cost == pytest.approx(
            FIG2_EXPECTED["optimal_cost"]
        )

    def test_caching_transfer_split(self, fig2):
        sched = solve_offline(fig2).schedule()
        assert sched.caching_cost(fig2.cost) == pytest.approx(
            FIG2_EXPECTED["caching_cost"]
        )
        assert sched.transfer_cost(fig2.cost) == pytest.approx(
            FIG2_EXPECTED["transfer_cost"]
        )

    def test_schedule_standard_form_and_feasible(self, fig2):
        sched = solve_offline(fig2).schedule()
        validate_schedule(sched, fig2, require_standard_form=True)

    def test_four_transfers(self, fig2):
        sched = solve_offline(fig2).schedule()
        assert len(sched.transfers) == 4
