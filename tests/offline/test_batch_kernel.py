"""Differential suite for the batched instance-major DP kernel.

Batch results must be *byte-identical* to per-item
``kernel="frontier"`` solves on every field — including the
``(value, server-id)`` lexicographic argmin tie-breaks — for ragged
batches (mixed ``n`` and ``m``), degenerate fleets (``m = 1``),
single-item batches, duplicate timestamps across items, and tie-heavy
integer-gap workloads.  Both sweep backends (compiled C when available,
the transliterated Python loop always) are held to the same contract,
and the raw-column packing path must produce the same layout as packing
pre-scanned instances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CostModel, ProblemInstance, solve_offline
from repro.core.types import InvalidInstanceError
from repro.kernels import solve_offline_frontier
from repro.kernels.batch import (
    BATCH_SWEEPS,
    BatchLayout,
    batch_sweep_backend,
    solve_layout,
    solve_offline_batch,
)
from repro.offline.streaming import StreamingSolver

from ..conftest import instances, make_instance
from .test_kernels import assert_bit_identical, tie_heavy_instances

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Every backend runnable on this box.  The Python sweep always exists;
#: the C sweep joins when a system compiler produced the shared object.
BACKENDS = ("python", "c") if batch_sweep_backend() == "c" else ("python",)


def _column_entry(name, inst):
    """The raw-column tuple the shard transports ship for one item."""
    return (
        name,
        inst.t[1:],
        inst.srv[1:],
        inst.num_servers,
        inst.cost.mu,
        inst.cost.lam,
        inst.origin,
        float(inst.t[0]),
    )


def assert_batch_matches_frontier(batch, per_item):
    for name, res in batch.items():
        assert_bit_identical(per_item[name], res)


@st.composite
def instance_batches(draw, min_items: int = 1, max_items: int = 5):
    """Ragged batches: items with independent n, m, costs and origins."""
    count = draw(st.integers(min_value=min_items, max_value=max_items))
    return {f"item-{k}": draw(instances()) for k in range(count)}


class TestBatchVsFrontier:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(items=instance_batches())
    @settings(**_SETTINGS)
    def test_ragged_batches(self, backend, items):
        per_item = {
            name: solve_offline_frontier(inst) for name, inst in items.items()
        }
        batch = solve_offline_batch(items, kernel=backend)
        assert list(batch) == list(items)  # input key order preserved
        assert_batch_matches_frontier(batch, per_item)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(items=st.lists(tie_heavy_instances(), min_size=1, max_size=4))
    @settings(**_SETTINGS)
    def test_tie_heavy_batches(self, backend, items):
        # Integer gaps with mu = lam = 1: many exactly-equal D candidates,
        # exercising the (value, server-id) lexicographic argmin.
        named = {f"item-{k}": inst for k, inst in enumerate(items)}
        per_item = {
            name: solve_offline_frontier(inst) for name, inst in named.items()
        }
        assert_batch_matches_frontier(
            solve_offline_batch(named, kernel=backend), per_item
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(items=st.lists(instances(max_m=1, max_n=25), min_size=1, max_size=4))
    @settings(**_SETTINGS)
    def test_single_server_batches(self, backend, items):
        named = {f"item-{k}": inst for k, inst in enumerate(items)}
        per_item = {
            name: solve_offline_frontier(inst) for name, inst in named.items()
        }
        assert_batch_matches_frontier(
            solve_offline_batch(named, kernel=backend), per_item
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(inst=instances())
    @settings(**_SETTINGS)
    def test_single_item_batch(self, backend, inst):
        batch = solve_offline_batch({"only": inst}, kernel=backend)
        assert_bit_identical(solve_offline_frontier(inst), batch["only"])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicate_timestamps_across_items(self, backend):
        # Per-item times are strictly increasing, but *across* items the
        # very same timestamps repeat — the packed columns must never mix
        # neighbouring items up.
        times = [1.0, 2.0, 3.0, 4.0]
        items = {
            f"item-{k}": make_instance(times, [k % 3, (k + 1) % 3, 0, 2], m=3)
            for k in range(5)
        }
        per_item = {
            name: solve_offline_frontier(inst) for name, inst in items.items()
        }
        assert_batch_matches_frontier(
            solve_offline_batch(items, kernel=backend), per_item
        )

    def test_backends_agree_with_each_other(self):
        if len(BACKENDS) < 2:
            pytest.skip("no C compiler on this box")
        items = {
            f"item-{k}": make_instance(
                [float(i) for i in range(1, 30)],
                [(i * (k + 1)) % 4 for i in range(29)],
                m=4,
            )
            for k in range(6)
        }
        a = solve_offline_batch(items, kernel="c")
        b = solve_offline_batch(items, kernel="python")
        for name in items:
            assert_bit_identical(a[name], b[name])

    def test_solve_offline_kernel_batch_single_instance(self):
        inst = make_instance([1.0, 2.0, 3.5, 5.0], [0, 1, 0, 1], m=2)
        res = solve_offline(inst, kernel="batch")
        assert res.instance is inst
        assert res.solver == "batch-dp"
        assert_bit_identical(solve_offline_frontier(inst), res)

    def test_empty_batch(self):
        assert solve_offline_batch({}) == {}
        with pytest.raises(ValueError, match="at least one item"):
            BatchLayout.from_instances({})

    def test_bad_sweep_kernel_rejected(self):
        inst = make_instance([1.0], [0], m=1)
        with pytest.raises(ValueError, match="batch sweep kernel"):
            solve_offline_batch({"x": inst}, kernel="warp")
        assert "warp" not in BATCH_SWEEPS


class TestStreamingPrefixEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(inst=instances())
    @settings(**_SETTINGS)
    def test_batch_equals_streaming_at_every_prefix(self, backend, inst):
        # The batch kernel solved on the prefix instance must equal the
        # streaming solver's state after the same appends — for EVERY
        # prefix, not just the full stream.
        solver = StreamingSolver(
            inst.num_servers,
            cost=inst.cost,
            origin=inst.origin,
            start_time=float(inst.t[0]),
        )
        for i in range(1, inst.n + 1):
            solver.append(float(inst.t[i]), int(inst.srv[i]))
            prefix = ProblemInstance.from_arrays(
                inst.t[1 : i + 1],
                inst.srv[1 : i + 1],
                num_servers=inst.num_servers,
                cost=inst.cost,
                origin=inst.origin,
                start_time=float(inst.t[0]),
            )
            stream = solver.result()
            batch = solve_offline_batch({"p": prefix}, kernel=backend)["p"]
            assert batch.C.tobytes() == stream.C.tobytes()
            assert batch.D.tobytes() == stream.D.tobytes()
            assert (
                batch.served_by_cache.tobytes()
                == stream.served_by_cache.tobytes()
            )
            assert batch.choice_d_tag.tobytes() == stream.choice_d_tag.tobytes()
            assert batch.choice_d_k.tobytes() == stream.choice_d_k.tobytes()


class TestBatchLayout:
    @given(items=instance_batches())
    @settings(**_SETTINGS)
    def test_from_columns_matches_from_instances(self, items):
        # The raw-column pre-scan (one concatenated lexsort + per-item
        # cumsum) must reproduce the instances' own pre-scan columns
        # bit-for-bit — this is what lets shard workers skip instance
        # construction entirely.
        by_inst = BatchLayout.from_instances(items)
        by_cols = BatchLayout.from_columns(
            [_column_entry(name, inst) for name, inst in items.items()]
        )
        assert by_cols.names == by_inst.names
        for field in (
            "off",
            "nreq",
            "soff",
            "mserv",
            "origin",
            "mu",
            "lam",
            "t",
            "srv",
            "p",
            "sigma",
            "B",
        ):
            assert (
                getattr(by_cols, field).tobytes()
                == getattr(by_inst, field).tobytes()
            ), field

    def test_result_arrays_are_readonly_views(self):
        items = {
            "a": make_instance([1.0, 2.0], [0, 1], m=2),
            "b": make_instance([1.0, 3.0, 4.0], [1, 0, 1], m=2),
        }
        batch = solve_offline_batch(items)
        for res in batch.values():
            for arr in (
                res.C,
                res.D,
                res.served_by_cache,
                res.choice_d_tag,
                res.choice_d_k,
            ):
                assert not arr.flags.writeable
                with pytest.raises(ValueError):
                    arr[0] = 0
        # Views really do share one stacked buffer per field.
        assert batch["a"].C.base is batch["b"].C.base

    def test_from_columns_validation(self):
        good = _column_entry("ok", make_instance([1.0, 2.0], [0, 1], m=2))
        with pytest.raises(InvalidInstanceError, match="strictly increasing"):
            BatchLayout.from_columns(
                [good, ("bad", [1.0, 1.0], [0, 1], 2, 1.0, 1.0, 0, 0.0)]
            )
        with pytest.raises(InvalidInstanceError, match="server ids"):
            BatchLayout.from_columns(
                [good, ("bad", [1.0, 2.0], [0, 5], 2, 1.0, 1.0, 0, 0.0)]
            )
        with pytest.raises(InvalidInstanceError, match="origin"):
            BatchLayout.from_columns(
                [good, ("bad", [1.0, 2.0], [0, 1], 2, 1.0, 1.0, 7, 0.0)]
            )
        with pytest.raises(InvalidInstanceError, match="at least one server"):
            BatchLayout.from_columns(
                [good, ("bad", [1.0, 2.0], [0, 0], 0, 1.0, 1.0, 0, 0.0)]
            )

    def test_mixed_costs_and_fleets_in_one_batch(self):
        # Nothing in the layout assumes homogeneity across items: fleet
        # sizes, cost models and origins may all differ per item.
        items = {
            "small": make_instance([1.0, 2.0, 2.5], [0, 0, 0], m=1),
            "wide": ProblemInstance.from_arrays(
                np.asarray([0.5, 1.5, 2.5, 3.0]),
                np.asarray([4, 2, 0, 3]),
                num_servers=5,
                cost=CostModel(mu=0.3, lam=2.7),
                origin=4,
            ),
            "dense": ProblemInstance.from_arrays(
                np.linspace(1.0, 9.0, 17),
                np.arange(17) % 3,
                num_servers=3,
                cost=CostModel(mu=2.0, lam=0.1),
                origin=1,
            ),
        }
        per_item = {
            name: solve_offline_frontier(inst) for name, inst in items.items()
        }
        assert_batch_matches_frontier(solve_offline_batch(items), per_item)

    def test_solve_layout_results_carry_no_instance(self):
        items = {"a": make_instance([1.0, 2.0], [0, 1], m=2)}
        results = solve_layout(BatchLayout.from_instances(items))
        assert results[0].instance is None
        assert results[0].solver == "batch-dp"
