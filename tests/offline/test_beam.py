"""Beam-search solver tests."""

import numpy as np
import pytest

from repro import solve_exact, solve_offline, validate_schedule
from repro.network import HeterogeneousCostModel
from repro.offline import solve_beam
from repro.workloads import poisson_zipf_instance

from ..conftest import make_instance


def het_model(m, rng, spread=2.0):
    mu = np.exp(rng.uniform(-np.log(spread), np.log(spread), size=m))
    lam = np.exp(rng.uniform(-0.5, 0.5, size=(m, m)))
    np.fill_diagonal(lam, 0.0)
    return HeterogeneousCostModel(mu=mu, lam=lam)


class TestAgainstExact:
    @pytest.mark.parametrize("seed", range(8))
    def test_wide_beam_matches_oracle_homogeneous(self, seed):
        inst = poisson_zipf_instance(20, 4, rate=1.0, rng=seed)
        ex = solve_exact(inst, build_schedule=False).optimal_cost
        bm = solve_beam(inst, width=128)
        assert bm.cost == pytest.approx(ex, rel=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_wide_beam_matches_oracle_heterogeneous(self, seed):
        rng = np.random.default_rng(seed)
        inst = poisson_zipf_instance(18, 4, rate=1.0, rng=200 + seed)
        het = het_model(4, rng)
        ex = solve_exact(inst, het=het, build_schedule=False).optimal_cost
        bm = solve_beam(inst, het=het, width=128)
        assert bm.cost == pytest.approx(ex, rel=1e-9)

    def test_fig6(self, fig6):
        assert solve_beam(fig6, width=64).cost == pytest.approx(8.9)


class TestUpperBoundProperty:
    @pytest.mark.parametrize("width", [1, 2, 8])
    def test_narrow_beams_never_beat_the_optimum(self, width):
        for seed in range(6):
            inst = poisson_zipf_instance(25, 4, rate=1.0, rng=seed)
            ex = solve_exact(inst, build_schedule=False).optimal_cost
            bm = solve_beam(inst, width=width)
            assert bm.cost >= ex - 1e-9

    def test_wider_beam_never_worse(self):
        for seed in range(6):
            inst = poisson_zipf_instance(30, 5, rate=1.0, rng=seed)
            narrow = solve_beam(inst, width=2, build_schedule=False).cost
            wide = solve_beam(inst, width=64, build_schedule=False).cost
            assert wide <= narrow + 1e-9

    def test_schedules_always_feasible(self):
        for seed in range(6):
            inst = poisson_zipf_instance(30, 5, rate=1.0, rng=seed)
            bm = solve_beam(inst, width=4)
            validate_schedule(bm.schedule, inst)
            assert bm.schedule.total_cost(inst.cost) == pytest.approx(bm.cost)


class TestScale:
    def test_large_fleet(self):
        inst = poisson_zipf_instance(150, 32, rate=1.0, rng=1)
        bm = solve_beam(inst, width=16)
        fast = solve_offline(inst).optimal_cost
        # Homogeneous large fleet: beam must stay near the exact DP.
        assert bm.cost <= 1.1 * fast

    def test_schedule_cost_consistency_heterogeneous(self):
        rng = np.random.default_rng(3)
        inst = poisson_zipf_instance(40, 6, rate=1.0, rng=3)
        het = het_model(6, rng)
        bm = solve_beam(inst, het=het, width=32)
        caching = sum(
            float(het.mu[iv.server]) * iv.duration
            for iv in bm.schedule.canonical().intervals
        )
        transfer = sum(
            float(het.lam[tr.src, tr.dst]) for tr in bm.schedule.transfers
        )
        assert caching + transfer == pytest.approx(bm.cost, rel=1e-9)


class TestAPI:
    def test_width_validated(self, fig6):
        with pytest.raises(ValueError):
            solve_beam(fig6, width=0)

    def test_empty_instance(self):
        inst = make_instance([], [], m=3)
        bm = solve_beam(inst)
        assert bm.cost == 0.0 and len(bm.schedule) == 0

    def test_het_size_checked(self, fig6):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="covers"):
            solve_beam(fig6, het=het_model(3, rng))
