"""Schedule reconstruction (backtracking) tests."""

import numpy as np
import pytest

from repro import (
    CostModel,
    ProblemInstance,
    reconstruct_schedule,
    solve_offline,
    solve_offline_naive,
    validate_schedule,
)
from repro.schedule import is_standard_form, schedule_is_tree

from ..conftest import make_instance


class TestCostIdentity:
    @pytest.mark.parametrize("seed", range(10))
    def test_realized_cost_equals_Cn(self, seed):
        rng = np.random.default_rng(200 + seed)
        m = int(rng.integers(1, 7))
        n = int(rng.integers(1, 50))
        t = np.cumsum(rng.uniform(0.02, 2.5, size=n))
        srv = rng.integers(0, m, size=n)
        inst = ProblemInstance.from_arrays(
            t,
            srv,
            num_servers=m,
            cost=CostModel(
                mu=float(rng.uniform(0.2, 3.0)), lam=float(rng.uniform(0.2, 3.0))
            ),
        )
        res = solve_offline(inst)
        sched = reconstruct_schedule(res)  # verify=True asserts internally
        assert sched.total_cost(inst.cost) == pytest.approx(res.optimal_cost)
        validate_schedule(sched, inst, require_standard_form=True)

    def test_naive_result_reconstructs_too(self, fig6):
        sched = reconstruct_schedule(solve_offline_naive(fig6))
        assert sched.total_cost(fig6.cost) == pytest.approx(8.9)


class TestStructure:
    def test_standard_form(self, fig6, fig2, fig7):
        for inst in (fig6, fig2, fig7):
            sched = solve_offline(inst).schedule()
            assert is_standard_form(sched, inst)

    def test_tree_property(self, fig6, fig2):
        for inst in (fig6, fig2):
            assert schedule_is_tree(solve_offline(inst).schedule(), inst)

    def test_no_self_transfers(self, fig6):
        sched = solve_offline(fig6).schedule()
        assert all(tr.src != tr.dst for tr in sched.transfers)

    def test_fig6_schedule_atoms(self, fig6):
        # The reconstructed optimum: origin caches [0, 1.4]; s^2 caches
        # [0.5, 4.0]; four transfers as the space-time diagram shows.
        sched = solve_offline(fig6).schedule()
        per = sched.per_server()
        assert per[0][0].start == pytest.approx(0.0)
        assert per[0][0].end == pytest.approx(1.4)
        assert per[1][0].start == pytest.approx(0.5)
        assert per[1][0].end == pytest.approx(4.0)
        assert len(sched.transfers) == 4


class TestScale:
    def test_long_transfer_chain_does_not_overflow_stack(self):
        # Thousands of alternating-transfer steps exercise the explicit
        # work stack (naive recursion would hit Python's limit).
        n = 5000
        t = np.arange(1, n + 1, dtype=float) * 10.0  # big gaps -> transfers
        srv = np.arange(n) % 2
        inst = ProblemInstance.from_arrays(
            t, srv, num_servers=2, cost=CostModel(mu=1.0, lam=0.5)
        )
        res = solve_offline(inst)
        sched = res.schedule()
        assert sched.total_cost(inst.cost) == pytest.approx(res.optimal_cost)

    def test_long_cache_chain(self):
        n = 3000
        t = np.arange(1, n + 1, dtype=float) * 0.01  # tiny gaps -> caching
        srv = np.zeros(n, dtype=int)
        inst = ProblemInstance.from_arrays(t, srv, num_servers=1)
        res = solve_offline(inst)
        assert res.schedule().total_cost(inst.cost) == pytest.approx(
            res.optimal_cost
        )


class TestMarginalServices:
    def test_short_gap_requests_cached_not_transferred(self):
        # Requests on s1 with sigma << lam inside another server's window
        # must be served by their own short caches.
        inst = make_instance(
            [1.0, 1.1, 1.2, 5.0], [1, 1, 1, 0], m=2, mu=1.0, lam=10.0
        )
        sched = solve_offline(inst).schedule()
        ivs = sched.intervals_on(1)
        assert any(iv.duration >= 0.2 - 1e-9 for iv in ivs)

    def test_long_gap_marginals_transferred(self):
        inst = make_instance(
            [1.0, 6.0, 6.5], [1, 1, 1], m=2, mu=1.0, lam=1.0
        )
        sched = solve_offline(inst).schedule()
        # sigma of r2 on s1 is 5 >> lam: a transfer must appear somewhere.
        assert len(sched.transfers) >= 1
