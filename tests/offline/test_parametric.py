"""λ-sensitivity tests."""

import numpy as np
import pytest

from repro.offline import lambda_breakpoints, lambda_sensitivity
from repro.workloads import poisson_zipf_instance

from ..conftest import make_instance


class TestLambdaSensitivity:
    def test_envelope_is_concave_nondecreasing(self):
        inst = poisson_zipf_instance(40, 4, rate=1.0, rng=0)
        pts = lambda_sensitivity(inst, np.linspace(0.1, 5.0, 12))
        costs = [p.optimal_cost for p in pts]
        assert all(b >= a - 1e-9 for a, b in zip(costs, costs[1:]))
        # Concavity: slopes (transfer counts) non-increasing in lambda.
        transfers = [p.transfers for p in pts]
        assert all(b <= a for a, b in zip(transfers, transfers[1:]))

    def test_slope_equals_transfer_count(self):
        # Finite differences of the envelope within one segment match
        # the active schedule's transfer count.
        inst = poisson_zipf_instance(30, 4, rate=1.0, rng=1)
        a, b = 0.50, 0.5001
        pts = lambda_sensitivity(inst, [a, b])
        if pts[0].transfers == pts[1].transfers:
            fd = (pts[1].optimal_cost - pts[0].optimal_cost) / (b - a)
            assert fd == pytest.approx(pts[0].transfers, abs=1e-3)

    def test_copy_time_rises_with_lambda(self):
        inst = poisson_zipf_instance(40, 4, rate=1.0, rng=2)
        pts = lambda_sensitivity(inst, [0.2, 2.0, 8.0])
        assert pts[0].copy_time <= pts[-1].copy_time + 1e-9

    def test_empty_grid_rejected(self, fig6):
        with pytest.raises(ValueError):
            lambda_sensitivity(fig6, [])

    def test_nonpositive_lambda_rejected(self, fig6):
        with pytest.raises(ValueError):
            lambda_sensitivity(fig6, [0.0, 1.0])


class TestBreakpoints:
    def test_breakpoints_separate_distinct_slopes(self):
        inst = poisson_zipf_instance(25, 3, rate=1.0, rng=3)
        bps = lambda_breakpoints(inst, 0.05, 10.0, tol=1e-3)
        pts = lambda_sensitivity(inst, [0.05] + bps + [10.0])
        # Transfer counts strictly decrease across consecutive probes.
        transfers = [p.transfers for p in pts]
        assert transfers[0] > transfers[-1]

    def test_single_server_has_no_breakpoints(self):
        inst = make_instance([1.0, 2.0, 3.0], [0, 0, 0], m=1)
        assert lambda_breakpoints(inst, 0.1, 10.0) == []

    def test_bad_range_rejected(self, fig6):
        with pytest.raises(ValueError):
            lambda_breakpoints(fig6, 2.0, 1.0)

    def test_breakpoint_value_matches_regime_flip(self):
        # Hand-solvable flip: transfer-everything costs 2μ + 2λ (hold the
        # origin through [0, 2], transfer at t=1 and t=2); cache-on-s1
        # costs 2.1μ + λ. Equal exactly at λ = 0.1μ.
        inst = make_instance([1.0, 1.1, 2.0], [1, 0, 1], m=2, mu=1.0)
        bps = lambda_breakpoints(inst, 0.02, 1.0, tol=1e-4)
        assert len(bps) == 1
        assert bps[0] == pytest.approx(0.1, abs=1e-3)
