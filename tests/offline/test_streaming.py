"""Streaming (incremental) DP tests."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro import StreamingSolver, solve_offline, validate_schedule
from repro.core.types import InvalidInstanceError
from repro.paperdata import FIG6_EXPECTED, FIG6_REQUESTS

from ..conftest import instances

_SETTINGS = dict(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAgainstBatch:
    def test_fig6_prefixes(self):
        ss = StreamingSolver(4)
        for i, (t, s) in enumerate(FIG6_REQUESTS, start=1):
            ss.append(t, s)
            assert ss.optimal_cost == pytest.approx(FIG6_EXPECTED["C"][i])

    @given(instances())
    @settings(**_SETTINGS)
    def test_matches_batch_at_every_prefix(self, inst):
        ss = StreamingSolver(
            inst.num_servers,
            cost=inst.cost,
            origin=inst.origin,
            start_time=float(inst.t[0]),
        )
        batch = solve_offline(inst)
        for i in range(1, inst.n + 1):
            c = ss.append(float(inst.t[i]), int(inst.srv[i]))
            assert c == pytest.approx(float(batch.C[i]), rel=1e-9, abs=1e-9)
        assert np.allclose(ss.result().C, batch.C)

    @given(instances(max_n=15))
    @settings(**_SETTINGS)
    def test_snapshot_reconstructs(self, inst):
        ss = StreamingSolver(
            inst.num_servers,
            cost=inst.cost,
            origin=inst.origin,
            start_time=float(inst.t[0]),
        )
        ss.extend(zip(inst.t[1:].tolist(), inst.srv[1:].tolist()))
        res = ss.result()
        sched = res.schedule()  # internal cost-identity assert
        validate_schedule(sched, ss.instance())


class TestAPI:
    def test_extend_returns_final_cost(self):
        ss = StreamingSolver(4)
        cost = ss.extend(FIG6_REQUESTS)
        assert cost == pytest.approx(8.9)

    def test_monotone_costs(self):
        ss = StreamingSolver(4)
        prev = 0.0
        for t, s in FIG6_REQUESTS:
            c = ss.append(t, s)
            assert c >= prev - 1e-12
            prev = c

    def test_instance_snapshot(self):
        ss = StreamingSolver(4)
        ss.extend(FIG6_REQUESTS)
        inst = ss.instance()
        assert inst.n == 7 and inst.num_servers == 4

    def test_out_of_order_append_rejected(self):
        ss = StreamingSolver(2)
        ss.append(1.0, 1)
        with pytest.raises(InvalidInstanceError, match="not after"):
            ss.append(0.5, 0)

    def test_equal_time_append_rejected(self):
        ss = StreamingSolver(2)
        ss.append(1.0, 1)
        with pytest.raises(InvalidInstanceError):
            ss.append(1.0, 0)

    def test_bad_server_rejected(self):
        ss = StreamingSolver(2)
        with pytest.raises(InvalidInstanceError, match="outside"):
            ss.append(1.0, 5)

    def test_constructor_validation(self):
        with pytest.raises(InvalidInstanceError):
            StreamingSolver(0)
        with pytest.raises(InvalidInstanceError):
            StreamingSolver(2, origin=7)

    def test_repr(self):
        ss = StreamingSolver(4)
        ss.extend(FIG6_REQUESTS)
        assert "C(n)=8.9" in repr(ss)

    def test_empty_solver_state(self):
        ss = StreamingSolver(3)
        assert ss.n == 0 and ss.optimal_cost == 0.0
