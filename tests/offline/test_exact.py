"""Exact subset-state oracle tests, including the heterogeneous extension."""

import numpy as np
import pytest

from repro import CostModel, ProblemInstance, solve_exact, solve_offline, validate_schedule
from repro.network import HeterogeneousCostModel, homogeneous_as_heterogeneous

from ..conftest import make_instance


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_fast_dp(self, seed):
        rng = np.random.default_rng(100 + seed)
        m = int(rng.integers(1, 6))
        n = int(rng.integers(1, 16))
        t = np.cumsum(rng.uniform(0.05, 2.0, size=n))
        srv = rng.integers(0, m, size=n)
        inst = ProblemInstance.from_arrays(
            t,
            srv,
            num_servers=m,
            cost=CostModel(
                mu=float(rng.uniform(0.2, 4.0)), lam=float(rng.uniform(0.2, 4.0))
            ),
        )
        ex = solve_exact(inst)
        assert ex.optimal_cost == pytest.approx(
            solve_offline(inst).optimal_cost, rel=1e-9
        )

    def test_fig6(self, fig6):
        assert solve_exact(fig6).optimal_cost == pytest.approx(8.9)

    def test_exact_schedule_is_feasible(self, fig6, fig2):
        for inst in (fig6, fig2):
            ex = solve_exact(inst)
            validate_schedule(ex.schedule, inst)
            assert ex.schedule.total_cost(inst.cost) == pytest.approx(
                ex.optimal_cost
            )

    def test_states_start_at_origin(self, fig6):
        ex = solve_exact(fig6)
        assert ex.states[0] == 1 << fig6.origin

    def test_schedule_optional(self, fig6):
        ex = solve_exact(fig6, build_schedule=False)
        assert len(ex.schedule) == 0
        assert ex.optimal_cost == pytest.approx(8.9)

    def test_too_many_servers_rejected(self):
        inst = make_instance([1.0], [16], m=17)
        with pytest.raises(ValueError, match="exponential"):
            solve_exact(inst)


class TestHeterogeneous:
    def test_homogeneous_matrix_matches_scalar(self, fig6):
        het = homogeneous_as_heterogeneous(fig6.cost, fig6.num_servers)
        assert solve_exact(fig6, het=het).optimal_cost == pytest.approx(8.9)

    def test_cheap_cache_server_attracts_the_copy(self):
        # Server 1 caches 10x cheaper; requests alternate 0/1 with big
        # gaps, so the copy should live on server 1 and transfer to 0.
        inst = make_instance([2.0, 4.0, 6.0, 8.0], [1, 0, 1, 0], m=2, lam=1.0)
        mu = np.array([10.0, 0.1])
        lam = np.array([[0.0, 1.0], [1.0, 0.0]])
        het = HeterogeneousCostModel(mu=mu, lam=lam)
        ex = solve_exact(inst, het=het)
        # Parking the copy on expensive server 0 would cost 10/unit rent:
        # hold 0 over [0, 8] (80) plus two transfers to server 1 (2).
        assert ex.optimal_cost < 82.0
        # The copy should live on cheap server 1 from its first visit on.
        cover = sum(iv.duration for iv in ex.schedule.intervals_on(1))
        assert cover >= inst.horizon - 2.0 - 1e-9

    def test_asymmetric_transfer_costs_respected(self):
        inst = make_instance([1.0, 2.0], [1, 2], m=3, mu=0.01)
        lam = np.array(
            [[0.0, 10.0, 10.0], [5.0, 0.0, 0.5], [5.0, 0.5, 0.0]]
        )
        het = HeterogeneousCostModel(mu=np.full(3, 0.01), lam=lam)
        ex = solve_exact(inst, het=het)
        # Route 0->1 (10) then 1->2 (0.5) beats 0->2 directly for r_2.
        pairs = {(tr.src, tr.dst) for tr in ex.schedule.transfers}
        assert (1, 2) in pairs

    def test_size_mismatch_rejected(self, fig6):
        het = homogeneous_as_heterogeneous(fig6.cost, 3)
        with pytest.raises(ValueError, match="covers"):
            solve_exact(fig6, het=het)


class TestUploads:
    def test_cheap_upload_reduces_cost(self):
        # Requests far apart on two servers; beta below lambda and below
        # long caching makes uploading competitive.
        inst = ProblemInstance(
            [(5.0, 1), (10.0, 0)],
            num_servers=2,
            cost=CostModel(mu=1.0, lam=4.0, beta=0.5),
        )
        with_upload = solve_exact(inst).optimal_cost
        no_upload = solve_exact(
            ProblemInstance(
                [(5.0, 1), (10.0, 0)],
                num_servers=2,
                cost=CostModel(mu=1.0, lam=4.0),
            )
        ).optimal_cost
        assert with_upload < no_upload

    def test_infinite_beta_means_no_uploads(self, fig6):
        assert solve_exact(fig6).optimal_cost == pytest.approx(8.9)
