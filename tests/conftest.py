"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro import CostModel, ProblemInstance
from repro.paperdata import fig2_instance, fig6_instance, fig7_instance


@pytest.fixture
def fig6():
    """The paper's Figs. 5/6 running example."""
    return fig6_instance()


@pytest.fixture
def fig2():
    """The Fig. 2 standard-form example."""
    return fig2_instance()


@pytest.fixture
def fig7():
    """The Fig. 7 SC epoch example."""
    return fig7_instance()


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


def make_instance(
    times, servers, m=None, mu=1.0, lam=1.0, origin=0
) -> ProblemInstance:
    """Terse instance builder used across test modules."""
    return ProblemInstance.from_arrays(
        np.asarray(times, dtype=float),
        np.asarray(servers, dtype=int),
        num_servers=m,
        cost=CostModel(mu=mu, lam=lam),
        origin=origin,
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def instances(
    draw,
    max_m: int = 5,
    max_n: int = 20,
    max_gap: float = 5.0,
    mu_range=(0.25, 4.0),
    lam_range=(0.25, 4.0),
):
    """Random, well-formed problem instances.

    Times are built from positive gaps so the strict-ordering invariant
    holds by construction; costs and the origin are drawn independently.
    """
    m = draw(st.integers(min_value=1, max_value=max_m))
    n = draw(st.integers(min_value=1, max_value=max_n))
    gaps = draw(
        st.lists(
            st.floats(
                min_value=1e-3,
                max_value=max_gap,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=n,
            max_size=n,
        )
    )
    servers = draw(
        st.lists(st.integers(min_value=0, max_value=m - 1), min_size=n, max_size=n)
    )
    mu = draw(
        st.floats(min_value=mu_range[0], max_value=mu_range[1], allow_nan=False)
    )
    lam = draw(
        st.floats(min_value=lam_range[0], max_value=lam_range[1], allow_nan=False)
    )
    origin = draw(st.integers(min_value=0, max_value=m - 1))
    times = np.cumsum(np.asarray(gaps))
    return ProblemInstance.from_arrays(
        times,
        np.asarray(servers, dtype=int),
        num_servers=m,
        cost=CostModel(mu=mu, lam=lam),
        origin=origin,
    )
