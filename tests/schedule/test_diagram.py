"""ASCII diagram rendering tests."""

from repro import Schedule, solve_offline
from repro.schedule import render_instance, render_schedule

from ..conftest import make_instance


class TestRenderSchedule:
    def test_contains_one_row_per_server(self, fig6):
        out = render_schedule(Schedule(), fig6, legend=False)
        assert sum(1 for line in out.splitlines() if line.lstrip().startswith("s")) == 4

    def test_origin_marker(self, fig6):
        out = render_schedule(Schedule(), fig6, legend=False)
        assert "O" in out

    def test_requests_marked(self, fig6):
        out = render_schedule(Schedule(), fig6, legend=False)
        assert out.count("*") == fig6.n

    def test_cache_runs_drawn(self, fig6):
        sched = solve_offline(fig6).schedule()
        out = render_schedule(sched, fig6, legend=False)
        assert "=" in out

    def test_legend_lists_transfers(self, fig6):
        sched = solve_offline(fig6).schedule()
        out = render_schedule(sched, fig6, legend=True)
        assert out.count("Tr(") == len(sched.transfers)

    def test_title_included(self, fig6):
        out = render_schedule(Schedule(), fig6, title="hello", legend=False)
        assert out.splitlines()[0] == "hello"

    def test_width_respected(self, fig6):
        out = render_schedule(Schedule(), fig6, width=40, legend=False)
        row = next(l for l in out.splitlines() if l.lstrip().startswith("s0"))
        assert len(row) <= len("s0 |") + 40

    def test_transfer_arrow_markers(self):
        inst = make_instance([1.0], [1], m=2)
        sched = Schedule().hold(0, 0.0, 1.0).transfer(0, 1, 1.0)
        out = render_schedule(sched, inst, legend=False)
        # Departure marker on the source row; the arrival cell is covered
        # by the request's own '*' (requests draw last by design).
        assert "^" in out

    def test_single_instant_horizon(self):
        inst = make_instance([], [], m=2)
        out = render_schedule(Schedule(), inst, legend=False)
        assert "s0" in out  # degenerate axis must not crash


class TestRenderInstance:
    def test_requests_only(self, fig7):
        out = render_instance(fig7)
        assert out.count("*") == fig7.n
        server_rows = [l for l in out.splitlines() if l.lstrip().startswith("s")]
        assert all("=" not in row for row in server_rows)
