"""Unit tests for the Schedule container."""

import pytest

from repro import CacheInterval, CostModel, Schedule, Transfer
from repro.schedule.schedule import coverage_gaps, merge_intervals


class TestMergeIntervals:
    def test_disjoint_kept(self):
        out = merge_intervals(
            [CacheInterval(0, 0.0, 1.0), CacheInterval(0, 2.0, 3.0)]
        )
        assert len(out) == 2

    def test_overlapping_merged(self):
        out = merge_intervals(
            [CacheInterval(0, 0.0, 2.0), CacheInterval(0, 1.0, 3.0)]
        )
        assert out == [CacheInterval(0, 0.0, 3.0)]

    def test_touching_merged(self):
        out = merge_intervals(
            [CacheInterval(0, 0.0, 1.0), CacheInterval(0, 1.0, 2.0)]
        )
        assert out == [CacheInterval(0, 0.0, 2.0)]

    def test_contained_swallowed(self):
        out = merge_intervals(
            [CacheInterval(0, 0.0, 5.0), CacheInterval(0, 1.0, 2.0)]
        )
        assert out == [CacheInterval(0, 0.0, 5.0)]

    def test_servers_kept_apart(self):
        out = merge_intervals(
            [CacheInterval(0, 0.0, 2.0), CacheInterval(1, 1.0, 3.0)]
        )
        assert len(out) == 2

    def test_isolated_zero_length_survives(self):
        out = merge_intervals([CacheInterval(0, 1.0, 1.0)])
        assert out == [CacheInterval(0, 1.0, 1.0)]

    def test_zero_length_swallowed_by_neighbour(self):
        out = merge_intervals(
            [CacheInterval(0, 0.0, 2.0), CacheInterval(0, 1.0, 1.0)]
        )
        assert out == [CacheInterval(0, 0.0, 2.0)]

    def test_empty(self):
        assert merge_intervals([]) == []


class TestScheduleBuilder:
    def test_hold_and_transfer_chain(self):
        s = Schedule().hold(0, 0.0, 1.0).transfer(0, 1, 1.0)
        assert len(s.intervals) == 1 and len(s.transfers) == 1

    def test_extend(self):
        a = Schedule().hold(0, 0.0, 1.0)
        b = Schedule().transfer(0, 1, 1.0)
        a.extend(b)
        assert len(a) == 2

    def test_copy_is_independent(self):
        a = Schedule().hold(0, 0.0, 1.0)
        b = a.copy()
        b.hold(1, 0.0, 1.0)
        assert len(a.intervals) == 1 and len(b.intervals) == 2


class TestScheduleQueries:
    def make(self):
        return (
            Schedule()
            .hold(0, 0.0, 2.0)
            .hold(1, 1.0, 3.0)
            .transfer(0, 1, 1.0)
        )

    def test_servers_with_copy_at(self):
        assert self.make().servers_with_copy_at(1.5) == [0, 1]
        assert self.make().servers_with_copy_at(2.5) == [1]

    def test_copy_count(self):
        assert self.make().copy_count_at(1.0) == 2

    def test_covers(self):
        s = self.make()
        assert s.covers(0, 1.9)
        assert not s.covers(0, 2.1)

    def test_span(self):
        assert self.make().span() == (0.0, 3.0)

    def test_span_of_empty_raises(self):
        with pytest.raises(Exception):
            Schedule().span()

    def test_intervals_on(self):
        assert len(self.make().intervals_on(1)) == 1

    def test_per_server(self):
        grouped = self.make().per_server()
        assert set(grouped) == {0, 1}


class TestCosts:
    def test_caching_cost_merges_overlaps(self):
        s = Schedule().hold(0, 0.0, 2.0).hold(0, 1.0, 3.0)
        assert s.caching_cost(CostModel(mu=2.0)) == pytest.approx(6.0)

    def test_transfer_cost_default(self):
        s = Schedule().transfer(0, 1, 1.0).transfer(1, 0, 2.0)
        assert s.transfer_cost(CostModel(lam=1.5)) == pytest.approx(3.0)

    def test_transfer_cost_with_weights(self):
        s = Schedule().transfer(0, 1, 1.0, weight=2.5)
        assert s.transfer_cost(CostModel(lam=1.0)) == pytest.approx(2.5)

    def test_total_cost(self):
        s = Schedule().hold(0, 0.0, 1.0).transfer(0, 1, 1.0)
        assert s.total_cost(CostModel()) == pytest.approx(2.0)


class TestEqualityAndDescribe:
    def test_equality_up_to_canonical_form(self):
        a = Schedule().hold(0, 0.0, 1.0).hold(0, 1.0, 2.0)
        b = Schedule().hold(0, 0.0, 2.0)
        assert a == b

    def test_inequality(self):
        assert Schedule().hold(0, 0.0, 1.0) != Schedule().hold(1, 0.0, 1.0)

    def test_describe_lists_atoms_and_cost(self):
        s = Schedule().hold(0, 0.0, 1.0).transfer(0, 1, 1.0)
        text = s.describe(CostModel())
        assert "H(s0" in text and "Tr(s0 -> s1" in text and "cost" in text

    def test_repr(self):
        assert "1 intervals" in repr(Schedule().hold(0, 0.0, 1.0))


class TestCoverageGaps:
    def test_no_gap(self):
        assert coverage_gaps([CacheInterval(0, 0.0, 5.0)], 0.0, 5.0) == []

    def test_middle_gap(self):
        gaps = coverage_gaps(
            [CacheInterval(0, 0.0, 1.0), CacheInterval(1, 2.0, 5.0)], 0.0, 5.0
        )
        assert gaps == [(1.0, 2.0)]

    def test_leading_and_trailing_gaps(self):
        gaps = coverage_gaps([CacheInterval(0, 1.0, 2.0)], 0.0, 3.0)
        assert gaps == [(0.0, 1.0), (2.0, 3.0)]

    def test_overlapping_intervals_fuse_coverage(self):
        gaps = coverage_gaps(
            [CacheInterval(0, 0.0, 2.0), CacheInterval(1, 1.0, 5.0)], 0.0, 5.0
        )
        assert gaps == []

    def test_empty_interval_list(self):
        assert coverage_gaps([], 0.0, 1.0) == [(0.0, 1.0)]


class TestScheduleGaps:
    """Schedule.gaps is the shared coverage/blackout detector."""

    def test_gapless_schedule(self):
        s = Schedule().hold(0, 0.0, 5.0)
        assert s.gaps(0.0, 5.0) == []

    def test_cross_server_coverage_fuses(self):
        # Gaps are about *any* live copy, not per-server coverage.
        s = Schedule().hold(0, 0.0, 2.0).hold(1, 2.0, 5.0)
        assert s.gaps(0.0, 5.0) == []

    def test_reports_zero_copy_windows(self):
        s = Schedule().hold(0, 0.0, 1.0).hold(1, 3.0, 5.0)
        assert s.gaps(0.0, 5.0) == [(1.0, 3.0)]

    def test_window_narrower_than_span(self):
        s = Schedule().hold(0, 0.0, 1.0).hold(1, 3.0, 5.0)
        assert s.gaps(2.0, 2.5) == [(2.0, 2.5)]

    def test_matches_free_function_on_merged_intervals(self):
        s = Schedule().hold(0, 0.0, 2.0).hold(0, 1.0, 3.0).hold(1, 4.0, 5.0)
        assert s.gaps(0.0, 5.0) == coverage_gaps(
            merge_intervals(s.intervals), 0.0, 5.0
        )

    def test_empty_schedule_is_one_big_gap(self):
        assert Schedule().gaps(0.0, 4.0) == [(0.0, 4.0)]
