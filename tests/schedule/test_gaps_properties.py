"""Property tests for coverage-gap computation (``Schedule.gaps``).

Gaps are the complement of the merged interval union over the horizon —
the single source of truth for both feasibility (condition 1) and
blackout detection.  The strategies force the shapes blackout logic
trips over: touching intervals (no gap between them), zero-length
intervals (cover a point, not a span), and intervals clipped by the
horizon.
"""

from hypothesis import given, strategies as st

from repro.core.types import CacheInterval
from repro.schedule.schedule import Schedule, coverage_gaps, merge_intervals

_grid = st.integers(min_value=0, max_value=40).map(lambda k: k / 4.0)


@st.composite
def interval_lists(draw, max_servers=3, max_intervals=8):
    ivs = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_intervals))):
        server = draw(st.integers(min_value=0, max_value=max_servers - 1))
        a, b = draw(_grid), draw(_grid)
        lo, hi = min(a, b), max(a, b)  # zero-length allowed
        ivs.append(CacheInterval(server, lo, hi))
    return ivs


@st.composite
def horizons(draw):
    a, b = draw(_grid), draw(_grid)
    lo, hi = min(a, b), max(a, b)
    return lo, hi + 0.25  # nonempty horizon


@given(interval_lists(), horizons())
def test_gaps_are_exact_coverage_complement(ivs, horizon):
    start, end = horizon
    schedule = Schedule(intervals=ivs)
    gaps = schedule.gaps(start, end)
    # Probe midpoints of a fine grid: inside a gap iff no interval covers.
    probes = [start + (end - start) * k / 64.0 for k in range(1, 64)]
    for t in probes:
        covered = any(iv.start <= t <= iv.end for iv in ivs)
        in_gap = any(a < t < b for a, b in gaps)
        if covered:
            assert not in_gap
        elif all(abs(t - e) > 1e-12 for iv in ivs for e in (iv.start, iv.end)):
            assert in_gap


@given(interval_lists(), horizons())
def test_gaps_are_disjoint_sorted_nonzero(ivs, horizon):
    start, end = horizon
    gaps = Schedule(intervals=ivs).gaps(start, end)
    for a, b in gaps:
        assert start <= a < b <= end  # no zero-width gaps, clipped
    for (a1, b1), (a2, b2) in zip(gaps, gaps[1:]):
        assert b1 <= a2  # sorted, non-overlapping
        if b1 == a2:
            # Gaps touch only where a zero-length interval splits the
            # uncovered span at a single covered point.
            assert any(iv.start == b1 == iv.end for iv in ivs)


@given(interval_lists(), horizons())
def test_touching_intervals_leave_no_gap(ivs, horizon):
    start, end = horizon
    merged = merge_intervals(ivs)
    gaps = coverage_gaps(merged, start, end)
    # No gap endpoint may fall strictly inside any interval's span.
    for a, b in gaps:
        for iv in ivs:
            assert not (iv.start < a < iv.end)
            assert not (iv.start < b < iv.end)


def test_touching_chain_covers_seamlessly():
    # Deterministic pin of the touching case: [0,1] + [1,2] on different
    # servers leaves no gap at the seam.
    ivs = [CacheInterval(0, 0.0, 1.0), CacheInterval(1, 1.0, 2.0)]
    assert Schedule(intervals=ivs).gaps(0.0, 2.0) == []


def test_zero_length_interval_is_a_point_not_a_span():
    # A zero-length interval covers only its instant: the gap on either
    # side survives, split at the point.
    ivs = [CacheInterval(0, 1.0, 1.0)]
    assert Schedule(intervals=ivs).gaps(0.0, 2.0) == [(0.0, 1.0), (1.0, 2.0)]


def test_full_horizon_gap_when_empty():
    assert Schedule(intervals=[]).gaps(0.0, 3.0) == [(0.0, 3.0)]
