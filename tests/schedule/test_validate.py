"""Feasibility-validator tests: accept good schedules, reject broken ones."""

import pytest

from repro import InvalidScheduleError, Schedule, solve_offline, validate_schedule
from repro.schedule.validate import is_standard_form

from ..conftest import make_instance


def tiny_instance():
    # origin s0 at t0=0; r1 on s1 at t=1; r2 on s0 at t=2.
    return make_instance([1.0, 2.0], [1, 0], m=2)


def good_schedule():
    return (
        Schedule()
        .hold(0, 0.0, 2.0)
        .transfer(0, 1, 1.0)
    )


class TestAccepts:
    def test_good_schedule(self):
        validate_schedule(good_schedule(), tiny_instance())

    def test_optimal_schedules_always_validate(self, fig6, fig2):
        for inst in (fig6, fig2):
            validate_schedule(
                solve_offline(inst).schedule(),
                inst,
                require_standard_form=True,
            )

    def test_transfer_served_request_without_interval(self):
        # The transferred copy is used and deleted immediately (red square).
        validate_schedule(good_schedule(), tiny_instance())

    def test_zero_length_interval_at_transfer(self):
        s = good_schedule().hold(1, 1.0, 1.0)
        validate_schedule(s, tiny_instance())

    def test_simultaneous_transfer_chain(self):
        # a -> b -> c at the same instant is legal (negligible latency).
        inst = make_instance([1.0, 1.0 + 1e-12], [1, 2], m=3)
        # strictly increasing times required; use two distinct instants
        inst = make_instance([1.0, 2.0], [1, 2], m=3)
        s = (
            Schedule()
            .hold(0, 0.0, 2.0)
            .transfer(0, 1, 1.0)
            .hold(1, 1.0, 2.0)
            .transfer(1, 2, 2.0)
        )
        validate_schedule(s, inst)

    def test_empty_instance_empty_schedule(self):
        inst = make_instance([], [], m=2)
        validate_schedule(Schedule(), inst)


class TestRejects:
    def test_unserved_request(self):
        s = Schedule().hold(0, 0.0, 2.0)
        with pytest.raises(InvalidScheduleError, match="not served"):
            validate_schedule(s, tiny_instance())

    def test_coverage_gap(self):
        inst = tiny_instance()
        s = (
            Schedule()
            .hold(0, 0.0, 0.5)
            .hold(0, 1.5, 2.0)
            .transfer(0, 1, 1.0)
        )
        with pytest.raises(InvalidScheduleError):
            validate_schedule(s, inst)

    def test_interval_from_thin_air(self):
        s = good_schedule().hold(1, 1.5, 2.0)  # no transfer arrives at 1.5
        with pytest.raises(InvalidScheduleError, match="custody|no transfer"):
            validate_schedule(s, tiny_instance())

    def test_transfer_from_copyless_server(self):
        inst = tiny_instance()
        s = Schedule().hold(0, 0.0, 2.0).transfer(1, 0, 1.0).transfer(0, 1, 1.0)
        # transfer 1 -> 0 at t=1: server 1 only gets a copy at t=1 via the
        # second transfer; circular same-instant pair must be rejected...
        # actually 0 is grounded, so 0->1 grounds 1; but 1->0 needs a dst
        # interval; without one it is a no-op delivery. Build a real cycle:
        inst2 = make_instance([1.0], [1], m=3)
        cyc = (
            Schedule()
            .hold(0, 0.0, 1.0)
            .hold(1, 1.0, 1.0)
            .hold(2, 1.0, 1.0)
            .transfer(1, 2, 1.0)
            .transfer(2, 1, 1.0)
        )
        with pytest.raises(InvalidScheduleError, match="ungrounded"):
            validate_schedule(cyc, inst2)

    def test_unknown_server_in_interval(self):
        s = good_schedule().hold(7, 0.0, 1.0)
        with pytest.raises(InvalidScheduleError, match="unknown server"):
            validate_schedule(s, tiny_instance())

    def test_unknown_server_in_transfer(self):
        s = good_schedule().transfer(0, 9, 1.0)
        with pytest.raises(InvalidScheduleError, match="unknown server"):
            validate_schedule(s, tiny_instance())

    def test_no_origin_interval(self):
        inst = tiny_instance()
        s = Schedule().hold(1, 0.0, 2.0).transfer(1, 0, 2.0)
        with pytest.raises(InvalidScheduleError):
            validate_schedule(s, inst)

    def test_dead_end_cache_rejected_when_minimal(self):
        inst = tiny_instance()
        s = good_schedule().hold(0, 0.0, 2.0)  # fine
        s2 = Schedule().hold(0, 0.0, 3.5).transfer(0, 1, 1.0)
        # interval runs past t_n=2 for no reason
        with pytest.raises(InvalidScheduleError, match="dead-end"):
            validate_schedule(s2, inst, require_minimal=True)

    def test_nonstandard_transfer_flagged(self):
        inst = tiny_instance()
        s = (
            Schedule()
            .hold(0, 0.0, 2.0)
            .transfer(0, 1, 0.5)  # not a request instant on s1
            .hold(1, 0.5, 1.0)
        )
        validate_schedule(s, inst)  # feasible...
        with pytest.raises(InvalidScheduleError, match="standard form"):
            validate_schedule(s, inst, require_standard_form=True)


class TestStandardForm:
    def test_standard_schedule(self, fig6):
        sched = solve_offline(fig6).schedule()
        assert is_standard_form(sched, fig6)

    def test_non_standard_schedule(self):
        inst = tiny_instance()
        s = Schedule().hold(0, 0.0, 2.0).transfer(0, 1, 0.25)
        assert not is_standard_form(s, inst)


class TestAllowedGaps:
    """Blackout relaxation: declared gaps excuse coverage, custody and
    service violations — anything undeclared still fails."""

    def gappy_instance(self):
        # r1 on s1 at t=1 falls inside the declared blackout; r2 on s0
        # at t=3 is served normally after re-seeding.
        return make_instance([1.0, 3.0], [1, 0], m=2)

    def gappy_schedule(self):
        # Coverage hole (0.5, 2.5); the post-gap interval starts from a
        # re-seed, not from a transfer.
        return Schedule().hold(0, 0.0, 0.5).hold(0, 2.5, 3.0)

    def test_rejected_without_declaration(self):
        with pytest.raises(InvalidScheduleError):
            validate_schedule(self.gappy_schedule(), self.gappy_instance())

    def test_accepted_with_declared_blackout(self):
        validate_schedule(
            self.gappy_schedule(),
            self.gappy_instance(),
            allowed_gaps=[(0.5, 2.5)],
        )

    def test_partial_declaration_still_rejected(self):
        # Declared window only covers part of the hole.
        with pytest.raises(InvalidScheduleError, match="no live copy"):
            validate_schedule(
                self.gappy_schedule(),
                self.gappy_instance(),
                allowed_gaps=[(0.5, 1.5)],
            )

    def test_unserved_request_outside_gap_still_rejected(self):
        # Same schedule, but the blackout declaration misses r1's instant
        # while covering the coverage hole exactly (r1 at t=1.0 is inside
        # the hole, so shrink the declared service excuse window).
        inst = make_instance([3.0], [1], m=2)  # r on s1 at t=3, no copy
        s = Schedule().hold(0, 0.0, 3.0)
        with pytest.raises(InvalidScheduleError, match="[Ss]erve"):
            validate_schedule(s, inst, allowed_gaps=[(0.5, 1.5)])

    def test_zero_width_gap_regrounds_custody(self):
        # A re-seed at a single instant: interval pops into existence at
        # t=2.0 with no transfer feeding it.
        inst = make_instance([3.0], [1], m=2)
        s = (
            Schedule()
            .hold(0, 0.0, 2.0)
            .hold(1, 2.0, 3.0)
        )
        # s1's interval has no custody chain: rejected plain...
        with pytest.raises(InvalidScheduleError):
            validate_schedule(s, inst)
        # ...but a declared re-seed instant grounds it.
        validate_schedule(s, inst, allowed_gaps=[(2.0, 2.0)])
