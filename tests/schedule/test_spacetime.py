"""Space-time graph substrate tests (Definition 2)."""

import pytest

from repro import Schedule, solve_offline
from repro.schedule.spacetime import (
    build_spacetime_graph,
    migration_only_cost,
    schedule_edge_cost,
    schedule_is_tree,
    schedule_to_edges,
)

from ..conftest import make_instance


class TestGraphShape:
    def test_vertex_count(self, fig6):
        g = build_spacetime_graph(fig6)
        assert g.number_of_nodes() == fig6.num_servers * (fig6.n + 1)

    def test_cache_edges_along_each_server(self, fig6):
        g = build_spacetime_graph(fig6)
        cache_edges = [e for e in g.edges(data=True) if e[2]["kind"] == "cache"]
        assert len(cache_edges) == fig6.num_servers * fig6.n

    def test_transfer_edges_form_bidirectional_stars(self, fig6):
        g = build_spacetime_graph(fig6)
        transfer_edges = [e for e in g.edges(data=True) if e[2]["kind"] == "transfer"]
        assert len(transfer_edges) == 2 * (fig6.num_servers - 1) * fig6.n

    def test_cache_edge_weights_are_mu_dt(self, fig6):
        g = build_spacetime_graph(fig6)
        w = g.edges[(0, 0), (0, 1)]["weight"]
        assert w == pytest.approx(fig6.cost.mu * (fig6.t[1] - fig6.t[0]))

    def test_transfer_edge_weights_are_lambda(self, fig6):
        g = build_spacetime_graph(fig6)
        s1 = int(fig6.srv[1])
        other = (s1 + 1) % fig6.num_servers
        assert g.edges[(other, 1), (s1, 1)]["weight"] == fig6.cost.lam

    def test_storage_row_optional(self, fig6):
        g = build_spacetime_graph(fig6, include_storage=True)
        assert (fig6.num_servers, 0) in g
        uploads = [e for e in g.edges(data=True) if e[2]["kind"] == "upload"]
        assert len(uploads) == fig6.n


class TestScheduleMapping:
    def test_edge_cost_matches_schedule_cost(self, fig6):
        res = solve_offline(fig6)
        sched = res.schedule()
        assert schedule_edge_cost(sched, fig6) == pytest.approx(res.optimal_cost)

    def test_optimal_schedule_is_tree(self, fig6, fig2):
        for inst in (fig6, fig2):
            assert schedule_is_tree(solve_offline(inst).schedule(), inst)

    def test_non_tree_detected(self):
        inst = make_instance([1.0], [1], m=2)
        # Two ways to reach r_1: cache chain + transfer AND a second path.
        sched = (
            Schedule()
            .hold(0, 0.0, 1.0)
            .hold(1, 0.0, 1.0)
            .transfer(0, 1, 1.0)
        )
        assert not schedule_is_tree(sched, inst)

    def test_unaligned_schedule_rejected(self, fig6):
        sched = Schedule().hold(0, 0.0, 0.123)
        with pytest.raises(Exception, match="request instant"):
            schedule_to_edges(sched, fig6)

    def test_empty_schedule_is_trivially_tree(self, fig6):
        assert schedule_is_tree(Schedule(), fig6)


class TestMigrationOnly:
    def test_matches_closed_form(self):
        inst = make_instance([1.0, 2.0, 4.0], [1, 1, 0], m=2, mu=2.0, lam=3.0)
        # horizon 4.0, two server switches (0->1 at r1, 1->0 at r3)
        assert migration_only_cost(inst) == pytest.approx(2.0 * 4.0 + 3.0 * 2)

    def test_never_below_optimal(self, fig6):
        assert migration_only_cost(fig6) >= solve_offline(fig6).optimal_cost - 1e-9

    def test_all_on_origin_pays_no_transfers(self):
        inst = make_instance([1.0, 2.0], [0, 0], m=1)
        assert migration_only_cost(inst) == pytest.approx(2.0)
