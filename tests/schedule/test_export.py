"""Schedule export (JSON / DOT) tests."""

import pytest

from repro import InvalidScheduleError, Schedule, solve_offline
from repro.schedule import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_dot,
    schedule_to_json,
)


class TestJsonRoundTrip:
    def test_roundtrip_equality(self, fig6):
        sched = solve_offline(fig6).schedule()
        back = schedule_from_json(schedule_to_json(sched))
        assert back == sched

    def test_costs_preserved(self, fig6):
        sched = solve_offline(fig6).schedule()
        back = schedule_from_json(schedule_to_json(sched))
        assert back.total_cost(fig6.cost) == pytest.approx(
            sched.total_cost(fig6.cost)
        )

    def test_weights_preserved(self):
        sched = Schedule().transfer(0, 1, 1.0, weight=1.75).hold(0, 0.0, 1.0)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.transfers[0].weight == 1.75

    def test_weightless_transfers_stay_weightless(self):
        sched = Schedule().transfer(0, 1, 1.0)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.transfers[0].weight is None

    def test_indent_option(self, fig6):
        text = schedule_to_json(solve_offline(fig6).schedule(), indent=2)
        assert "\n" in text

    def test_empty_schedule(self):
        back = schedule_from_json(schedule_to_json(Schedule()))
        assert len(back) == 0


class TestValidation:
    def test_bad_version_rejected(self):
        with pytest.raises(InvalidScheduleError, match="version"):
            schedule_from_dict({"version": 99, "intervals": [], "transfers": []})

    def test_malformed_payload_rejected(self):
        with pytest.raises(InvalidScheduleError, match="malformed"):
            schedule_from_dict(
                {"version": 1, "intervals": [{"server": 0}], "transfers": []}
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(InvalidScheduleError, match="JSON"):
            schedule_from_json("{nope")


class TestDot:
    def test_dot_structure(self, fig6):
        sched = solve_offline(fig6).schedule()
        dot = schedule_to_dot(sched, fig6, title="fig6")
        assert dot.startswith('digraph "fig6"')
        assert dot.rstrip().endswith("}")
        assert "origin" in dot

    def test_edge_counts(self, fig6):
        from repro.schedule.spacetime import schedule_to_edges

        sched = solve_offline(fig6).schedule()
        dot = schedule_to_dot(sched, fig6)
        assert dot.count("->") == len(schedule_to_edges(sched, fig6))

    def test_transfers_dashed(self, fig6):
        sched = solve_offline(fig6).schedule()
        assert "style=dashed" in schedule_to_dot(sched, fig6)
