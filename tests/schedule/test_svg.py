"""SVG renderer tests (structural XML checks)."""

import xml.etree.ElementTree as ET

import pytest

from repro import Schedule, solve_offline
from repro.schedule import render_svg, write_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestStructure:
    def test_well_formed_xml(self, fig6):
        sched = solve_offline(fig6).schedule()
        root = parse(render_svg(sched, fig6))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_request_dot_per_request(self, fig6):
        sched = solve_offline(fig6).schedule()
        root = parse(render_svg(sched, fig6))
        dots = [
            el
            for el in root.iter(f"{SVG_NS}circle")
            if el.get("class") == "request"
        ]
        assert len(dots) == fig6.n

    def test_interval_and_transfer_counts(self, fig6):
        sched = solve_offline(fig6).schedule()
        root = parse(render_svg(sched, fig6))
        bars = [
            el for el in root.iter(f"{SVG_NS}rect") if el.get("class") == "cache"
        ]
        arrows = [
            el
            for el in root.iter(f"{SVG_NS}line")
            if el.get("class") == "transfer"
        ]
        canon = sched.canonical()
        assert len(bars) == len(canon.intervals)
        assert len(arrows) == len(canon.transfers)

    def test_origin_ring_present(self, fig6):
        root = parse(render_svg(Schedule(), fig6))
        rings = [
            el
            for el in root.iter(f"{SVG_NS}circle")
            if el.get("class") == "origin"
        ]
        assert len(rings) == 1

    def test_title_escaped(self, fig6):
        text = render_svg(Schedule(), fig6, title="<unsafe> & co")
        assert "<unsafe>" not in text
        assert "&lt;unsafe&gt;" in text
        parse(text)  # still well-formed

    def test_lane_labels(self, fig6):
        text = render_svg(Schedule(), fig6)
        for j in range(fig6.num_servers):
            assert f">s{j}<" in text


class TestGeometry:
    def test_request_x_positions_monotone(self, fig6):
        root = parse(render_svg(Schedule(), fig6))
        xs = [
            float(el.get("cx"))
            for el in root.iter(f"{SVG_NS}circle")
            if el.get("class") == "request"
        ]
        assert xs == sorted(xs)

    def test_custom_dimensions(self, fig6):
        root = parse(render_svg(Schedule(), fig6, width=400, lane_height=20))
        assert root.get("width") == "400"


class TestWrite:
    def test_write_svg_roundtrip(self, fig6, tmp_path):
        sched = solve_offline(fig6).schedule()
        path = tmp_path / "fig6.svg"
        write_svg(sched, fig6, str(path))
        parse(path.read_text())
