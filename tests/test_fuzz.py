"""Chaos suite: every workload family × every solver × every policy.

One battery of global invariants over a diverse instance zoo.  Anything
that survives this plus the per-module property tests has earned its
keep.  Kept deliberately moderate in size so the whole suite stays
fast; crank ``ZOO_SEEDS`` locally for a deeper soak.
"""

import numpy as np
import pytest

from repro import (
    CostModel,
    RecedingHorizonPlanner,
    SpeculativeCaching,
    StreamingSolver,
    double_transfer,
    solve_exact,
    solve_offline,
    solve_offline_naive,
    validate_schedule,
)
from repro.network import Cluster
from repro.offline import solve_beam
from repro.online import (
    AlwaysTransfer,
    MarkovPredictor,
    NeverDelete,
    OracleNextRequest,
    PredictiveCaching,
    RandomizedTTL,
)
from repro.schedule import is_standard_form, schedule_edge_cost
from repro.workloads import (
    MarkovMobility,
    diurnal_instance,
    flash_crowd_instance,
    mmpp_instance,
    poisson_zipf_instance,
)

ZOO_SEEDS = range(3)


def zoo(seed):
    """One instance per workload family, per seed."""
    cost = CostModel(
        mu=float(np.random.default_rng(seed).uniform(0.3, 2.0)),
        lam=float(np.random.default_rng(seed + 1).uniform(0.3, 2.0)),
    )
    cluster = Cluster.grid(2, 2, cost=cost)
    yield poisson_zipf_instance(35, 4, rate=1.0, zipf_s=1.0, cost=cost, rng=seed)
    yield mmpp_instance(35, 4, cost=cost, rng=seed)
    yield MarkovMobility(cluster, locality=0.8, request_rate=1.0).instance(
        2, 20.0, cost=cost, rng=seed
    )
    yield diurnal_instance(30.0, 4, base_rate=1.5, cost=cost, rng=seed)
    yield flash_crowd_instance(35, 4, cost=cost, rng=seed)


def policies():
    yield SpeculativeCaching()
    yield SpeculativeCaching(epoch_size=4)
    yield SpeculativeCaching(window_factor=0.5)
    yield AlwaysTransfer()
    yield NeverDelete()
    yield RandomizedTTL(seed=0)
    yield PredictiveCaching(MarkovPredictor())
    yield PredictiveCaching(OracleNextRequest(horizon=3))
    yield RecedingHorizonPlanner(horizon=2)


@pytest.mark.parametrize("seed", ZOO_SEEDS)
def test_offline_solver_concordance(seed):
    for inst in zoo(seed):
        fast = solve_offline(inst)
        assert fast.agrees_with(solve_offline_naive(inst))
        exact = solve_exact(inst, build_schedule=False).optimal_cost
        assert fast.optimal_cost == pytest.approx(exact, rel=1e-9, abs=1e-9)
        assert solve_beam(inst, width=128, build_schedule=False).cost == (
            pytest.approx(exact, rel=1e-9, abs=1e-9)
        )
        ss = StreamingSolver(
            inst.num_servers, cost=inst.cost, origin=inst.origin,
            start_time=float(inst.t[0]),
        )
        ss.extend(zip(inst.t[1:].tolist(), inst.srv[1:].tolist()))
        assert ss.optimal_cost == pytest.approx(fast.optimal_cost)


@pytest.mark.parametrize("seed", ZOO_SEEDS)
def test_reconstruction_invariants(seed):
    for inst in zoo(seed):
        res = solve_offline(inst)
        sched = res.schedule()
        validate_schedule(sched, inst, require_standard_form=True)
        assert is_standard_form(sched, inst)
        assert schedule_edge_cost(sched, inst) == pytest.approx(
            res.optimal_cost, rel=1e-9, abs=1e-9
        )
        assert inst.running_bound() <= res.optimal_cost + 1e-9


@pytest.mark.parametrize("seed", ZOO_SEEDS)
def test_every_policy_feasible_and_never_beats_opt(seed):
    for inst in zoo(seed):
        opt = solve_offline(inst).optimal_cost
        for policy in policies():
            run = policy.run(inst)
            validate_schedule(run.schedule, inst)
            assert run.cost >= opt - 1e-6, (policy.name, inst)


@pytest.mark.parametrize("seed", ZOO_SEEDS)
def test_sc_theorem_chain_across_the_zoo(seed):
    from repro.online import verify_theorem3

    for inst in zoo(seed):
        rep = verify_theorem3(inst)
        assert rep.holds(), (rep, inst)


@pytest.mark.parametrize("seed", ZOO_SEEDS)
def test_dt_identity_across_the_zoo(seed):
    for inst in zoo(seed):
        run = SpeculativeCaching().run(inst)
        dt = double_transfer(run, inst)
        assert dt.total_cost == pytest.approx(run.cost)
