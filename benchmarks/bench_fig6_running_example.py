"""Experiment Fig 5+6 — the paper's running example, regenerated.

Recomputes the full ``b/B/C/D`` table of Fig. 6 (all values must match
the paper exactly), renders the optimal schedule's space-time diagram,
and benchmarks the fast DP on the instance.
"""

import numpy as np
import pytest

from repro import solve_offline
from repro.analysis import format_table
from repro.paperdata import FIG6_EXPECTED, fig6_instance
from repro.schedule import render_schedule

from _util import emit


def test_fig6_table_regenerated(benchmark):
    inst = fig6_instance()
    res = benchmark(solve_offline, inst)

    rows = []
    for i in range(inst.n + 1):
        rows.append(
            {
                "i": i,
                "t_i": float(inst.t[i]),
                "s_i": f"s^{int(inst.srv[i]) + 1}",
                "b_i": float(inst.b[i]),
                "B_i": float(inst.B[i]),
                "C(i)": float(res.C[i]),
                "D(i)": float(res.D[i]),
            }
        )
    table = format_table(rows, precision=4)
    diagram = render_schedule(
        res.schedule(), inst, title="optimal schedule (paper Fig. 6)"
    )
    emit(
        "fig6_running_example",
        f"{table}\n\n{diagram}\n\npaper C(7) = 8.9, ours = {res.optimal_cost:.4g}",
        header="Fig 6 running example (m=4, mu=lam=1)",
    )

    assert np.allclose(res.C, FIG6_EXPECTED["C"])
    for i, want in FIG6_EXPECTED["D_finite"].items():
        assert res.D[i] == pytest.approx(want)
    assert res.optimal_cost == pytest.approx(FIG6_EXPECTED["optimal_cost"])
