"""P3 — zero-copy service fabric + columnar ingest (supersedes the P1 grid).

Four measured sections, written to ``BENCH_service_throughput.json`` (at
the repository root) plus a human-readable table under ``benchmarks/out/``:

1. **Transport grid** — ``solve_offline_multi`` over items × processes,
   per transport: the PR-3 pickled descriptor path versus the persistent
   shared-memory :class:`~repro.service.fabric.ServicePool` (steady
   state, i.e. segments attached and worker-side instances cached).
2. **Per-phase timings** of the shm path on the largest grid point:
   ``serialize_attach`` (arena + result-region pack), ``first_call``
   (includes worker attach + instance build), ``steady_call`` (pure
   solve), and ``merge`` (copy-out of the result region).
3. **Ingestion** — building a :class:`MultiItemInstance` from the same
   log as CSV (``read_trace`` + ``from_records``) versus columnar
   (``from_columnar`` over mmap columns), plus the streaming converter's
   rate and a subprocess peak-RSS check that conversion memory is
   bounded by the chunk size, not the log length.
4. **End-to-end** — the old pipeline (CSV ingest + K pickled pool
   solves) versus the new one (columnar ingest + K persistent-pool
   solves) on the standard grid workload.

Hard checks ride along with the timings:

* **bit-identity** — every parallel grid point's canonical cost dump
  must be byte-identical to the serial one, for *both* transports, and
  the columnar-ingested service must equal the CSV-ingested one item by
  item.  Asserted unconditionally, on any machine.
* **ingest rate** — columnar ingestion must be ≥10× CSV ingestion at
  the full-mode log size (1M rows); single-threaded, so asserted
  whenever the full grid runs.
* **speedup** — the new end-to-end pipeline must be ≥1.5× the old one
  at 4 processes.  Asserted only when the machine actually has ≥4
  usable cores; the JSON records the measured ratio honestly either way.
* **batch kernel** — the serial multi-item solve (batched instance-major
  kernel, the ``kernel="auto"`` default) must be ≥5× the per-item
  frontier loop at the largest grid point, with a byte-identical cost
  surface.  Identity is unconditional; the speedup is hard on full runs
  with the compiled C sweep.
* **no leaks** — ``active_segments()`` must be empty at the end.

``SERVICE_BENCH_SMOKE=1`` shrinks everything to seconds for CI smoke
jobs (items=8, processes ∈ {1, 2}, 20k-row ingest log).
"""

import hashlib
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro import (
    MultiItemInstance,
    MultiItemOnlineService,
    ServicePool,
    SpeculativeCaching,
    convert_csv,
    multi_item_workload,
    solve_offline_multi,
)
from repro.analysis import format_table
from repro.kernels import batch_sweep_backend
from repro.service.fabric import active_segments
from repro.workloads.traces import TraceRecord, read_trace, write_trace

from _util import emit

#: Minimum serial speedup of the batched kernel over the per-item
#: frontier loop at the largest grid point (hard when the compiled sweep
#: is available on a full run; recorded honestly either way).
BATCH_SPEEDUP_GATE = 5.0

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_service_throughput.json"

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
M = 24
if SMOKE:
    ITEM_GRID = [8]
    PER_ITEM = 40
    PROC_GRID = [1, 2]
    REPEATS = 1
    INGEST_ROWS = 20_000
    E2E_CALLS = 2
else:
    ITEM_GRID = [16, 96]
    PER_ITEM = 1600
    PROC_GRID = [1, 2, 4]
    REPEATS = 2
    INGEST_ROWS = 1_000_000
    E2E_CALLS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _canonical_costs(off) -> str:
    """Canonical JSON dump of the full cost surface (byte-comparable)."""
    return json.dumps(
        {
            "total": off.total_cost,
            "per_item": {k: v for k, v in off.cost_breakdown().items()},
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _service_records(svc):
    """Flatten a service to one merged, time-ordered trace-record stream."""
    rows = []
    for name, inst in svc.items.items():
        for i in range(1, inst.n + 1):
            rows.append(
                TraceRecord(
                    time=float(inst.t[i]), server=int(inst.srv[i]), item=name
                )
            )
    rows.sort(key=lambda r: r.time)
    return rows


def _synth_log(rows, items, m, seed):
    """A mixed multi-item log: Poisson times, random servers/items."""
    g = np.random.default_rng(seed)
    times = np.cumsum(g.exponential(1.0, size=rows))
    servers = g.integers(0, m, size=rows)
    ids = g.integers(0, items, size=rows)
    return [
        TraceRecord(time=float(times[i]), server=int(servers[i]),
                    item=f"obj-{int(ids[i])}")
        for i in range(rows)
    ]


def _convert_rss_kb(csv_path, dest, chunk_rows):
    """Peak RSS (KiB) of converting ``csv_path`` in a fresh interpreter."""
    script = (
        "import resource, sys\n"
        "from repro.workloads.columnar import convert_csv\n"
        "convert_csv(sys.argv[1], sys.argv[2], chunk_rows=int(sys.argv[3]))\n"
        "print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)\n"
    )
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    out = subprocess.run(
        [sys.executable, "-c", script, str(csv_path), str(dest), str(chunk_rows)],
        capture_output=True, text=True, check=True, env=env,
    )
    return int(out.stdout.strip())


def _bench_transports(cpus):
    """Section 1 (+5): transport grid with unconditional bit-identity.

    The serial row is the batched instance-major kernel (the default for
    multi-item solves since P8); a ``serial-frontier`` row times the old
    per-item loop on the same workload so the JSON records the batch
    kernel's serial speedup, gated ≥5x at the largest grid point when
    the compiled sweep is available.
    """
    rows, json_rows = [], []
    batch_gate = None
    for num_items in ITEM_GRID:
        svc = multi_item_workload(
            num_items, num_items * PER_ITEM, M, rng=num_items
        )
        t_serial, off_serial = _best_of(lambda: solve_offline_multi(svc), REPEATS)
        canon_serial = _canonical_costs(off_serial)
        t_item, off_item = _best_of(
            lambda: solve_offline_multi(svc, kernel="frontier"), REPEATS
        )
        # Semantics gate (unconditional): the batched kernel must not
        # move the cost surface a single byte vs the per-item path.
        assert _canonical_costs(off_item) == canon_serial, (
            f"batch kernel cost surface diverged from per-item frontier "
            f"at items={num_items}"
        )
        serial_speedup = t_item / t_serial if t_serial > 0 else float("inf")
        batch_gate = {
            "items": num_items,
            "per_item_frontier_seconds": t_item,
            "batch_seconds": t_serial,
            "serial_speedup": serial_speedup,
            "backend": batch_sweep_backend(),
            "threshold": BATCH_SPEEDUP_GATE,
        }
        points = [
            ("serial", 1, t_serial, canon_serial),
            ("serial-frontier", 1, t_item, canon_serial),
        ]
        for procs in [p for p in PROC_GRID if p > 1]:
            t_pickle, off_pickle = _best_of(
                lambda: solve_offline_multi(
                    svc, processes=procs, transport="pickle"
                ),
                REPEATS,
            )
            points.append(
                ("pickle", procs, t_pickle, _canonical_costs(off_pickle))
            )
            with ServicePool(procs) as pool:
                pool.solve(svc)  # warm: attach segments, build instances
                t_shm, off_shm = _best_of(lambda: pool.solve(svc), REPEATS)
            points.append(("shm", procs, t_shm, _canonical_costs(off_shm)))
        for transport, procs, seconds, canon in points:
            match = canon == canon_serial
            # Semantics gate: neither transport may change a single byte
            # of the cost surface, on any machine.
            assert match, (
                f"{transport} cost surface diverged at items={num_items}, "
                f"processes={procs}"
            )
            speedup = t_serial / seconds if seconds > 0 else float("inf")
            rows.append(
                {
                    "items": num_items,
                    "requests": svc.total_requests,
                    "transport": transport,
                    "processes": procs,
                    "seconds": seconds,
                    "speedup": speedup,
                    "costs == serial": "yes" if match else "NO",
                }
            )
            json_rows.append(
                {
                    "items": num_items,
                    "requests": svc.total_requests,
                    "m": M,
                    "transport": transport,
                    "processes": procs,
                    "shards": procs,
                    "seconds": seconds,
                    "speedup_vs_serial": speedup,
                    "costs_match_serial": match,
                    "total_cost": off_serial.total_cost,
                    "canonical_costs_sha": hashlib.sha256(
                        canon.encode()
                    ).hexdigest()[:16],
                }
            )
    # Perf gate: serial batch ≥5x serial per-item frontier at the
    # largest grid point.  Hard only on full runs with the compiled
    # sweep — the Python fallback records its honest ratio instead.
    if not SMOKE and batch_gate["backend"] == "c":
        assert batch_gate["serial_speedup"] >= BATCH_SPEEDUP_GATE, (
            f"batch kernel only {batch_gate['serial_speedup']:.2f}x the "
            f"per-item frontier loop at items={batch_gate['items']} "
            f"(gate {BATCH_SPEEDUP_GATE}x)"
        )
    return rows, json_rows, batch_gate


def _bench_phases():
    """Section 2: where the shm path's time goes, largest grid point."""
    num_items = ITEM_GRID[-1]
    procs = PROC_GRID[-1]
    svc = multi_item_workload(num_items, num_items * PER_ITEM, M, rng=num_items)
    with ServicePool(procs) as pool:
        t0 = time.perf_counter()
        _, region = pool._regions_for(svc)  # pack arena + result region
        t_pack = time.perf_counter() - t0
        t_first, _ = _best_of(lambda: pool.solve(svc), 1)
        t_steady, _ = _best_of(lambda: pool.solve(svc), max(REPEATS, 2))
        t0 = time.perf_counter()
        for name in svc.items:
            region.read_item(name)
        t_merge = time.perf_counter() - t0
    return {
        "items": num_items,
        "processes": procs,
        "serialize_attach_seconds": t_pack,
        "first_call_seconds": t_first,
        "steady_call_seconds": t_steady,
        "merge_seconds": t_merge,
    }


def _bench_ingest(tmp):
    """Section 3: CSV vs columnar ingestion + converter bounded RSS."""
    csv_path = tmp / "ingest.csv"
    col_path = tmp / "ingest.col"
    write_trace(_synth_log(INGEST_ROWS, 32, M, seed=11), csv_path)

    t_convert, _ = _best_of(
        lambda: convert_csv(csv_path, col_path, chunk_rows=1 << 16), 1
    )
    t_csv, svc_csv = _best_of(
        lambda: MultiItemInstance.from_records(read_trace(csv_path)), 1
    )
    t_col, svc_col = _best_of(
        lambda: MultiItemInstance.from_columnar(col_path), 1
    )
    # Identity gate: both ingestion paths must build the same service.
    assert list(svc_csv.items) == list(svc_col.items)
    for k in svc_csv.items:
        a, b = svc_csv.items[k], svc_col.items[k]
        assert a == b and np.array_equal(a.t, b.t) and np.array_equal(a.srv, b.srv)

    # Bounded memory: converting a 10x longer log at the same chunk size
    # must not cost proportionally more peak RSS.
    small_csv = tmp / "ingest_small.csv"
    write_trace(_synth_log(max(INGEST_ROWS // 10, 1000), 32, M, seed=12), small_csv)
    rss_small = _convert_rss_kb(small_csv, tmp / "s.col", 8192)
    rss_big = _convert_rss_kb(csv_path, tmp / "b.col", 8192)
    assert rss_big < rss_small * 2.5, (
        f"converter RSS scales with log length: {rss_small} KiB -> "
        f"{rss_big} KiB for 10x the rows"
    )

    ratio = t_csv / t_col if t_col > 0 else float("inf")
    if not SMOKE:
        assert ratio >= 10.0, (
            f"columnar ingest only {ratio:.1f}x CSV at {INGEST_ROWS} rows"
        )
    return {
        "rows": INGEST_ROWS,
        "csv_seconds": t_csv,
        "csv_rows_per_s": INGEST_ROWS / t_csv,
        "columnar_seconds": t_col,
        "columnar_rows_per_s": INGEST_ROWS / t_col,
        "ingest_ratio": ratio,
        "ingest_ratio_gate": ">=10x, asserted on the full grid",
        "convert_seconds": t_convert,
        "convert_rows_per_s": INGEST_ROWS / t_convert,
        "convert_rss_small_kb": rss_small,
        "convert_rss_big_kb": rss_big,
        "csv_bytes": os.path.getsize(csv_path),
        "columnar_bytes": os.path.getsize(col_path),
    }


def _bench_end_to_end(tmp, cpus):
    """Section 4: old pipeline vs new on the standard grid workload."""
    num_items = ITEM_GRID[-1]
    procs = PROC_GRID[-1]
    svc = multi_item_workload(num_items, num_items * PER_ITEM, M, rng=num_items)
    csv_path = tmp / "e2e.csv"
    col_path = tmp / "e2e.col"
    write_trace(_service_records(svc), csv_path)
    convert_csv(csv_path, col_path)

    def old_pipeline():
        s = MultiItemInstance.from_records(read_trace(csv_path))
        for _ in range(E2E_CALLS):
            solve_offline_multi(s, processes=procs, transport="pickle")

    def new_pipeline():
        s = MultiItemInstance.from_columnar(col_path)
        with ServicePool(procs) as pool:
            for _ in range(E2E_CALLS):
                pool.solve(s)

    t_old, _ = _best_of(old_pipeline, 1)
    t_new, _ = _best_of(new_pipeline, 1)
    speedup = t_old / t_new if t_new > 0 else float("inf")
    # Perf gate: only meaningful where the hardware can parallelise.
    if not SMOKE and cpus >= 4:
        assert speedup >= 1.5, (
            f"end-to-end pipeline only {speedup:.2f}x at {procs} processes"
        )
    return {
        "items": num_items,
        "requests": svc.total_requests,
        "processes": procs,
        "solve_calls": E2E_CALLS,
        "old_pipeline": "CSV ingest + pickled pool solves",
        "new_pipeline": "columnar ingest + persistent shm pool solves",
        "old_seconds": t_old,
        "new_seconds": t_new,
        "speedup": speedup,
        "speedup_gate": ">=1.5x, asserted when usable_cpus >= 4",
    }


def test_service_throughput(benchmark):
    cpus = _usable_cpus()
    rows, json_rows, batch_gate = _bench_transports(cpus)
    phases = _bench_phases()
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ingest = _bench_ingest(tmp)
        e2e = _bench_end_to_end(tmp, cpus)

    # Online serve identity ride-along: pool vs ephemeral shm vs serial.
    svc_small = multi_item_workload(ITEM_GRID[0], ITEM_GRID[0] * 30, 8, rng=7)
    serve_serial = MultiItemOnlineService(SpeculativeCaching).run(svc_small)
    with ServicePool(2) as pool:
        serve_pool = MultiItemOnlineService(SpeculativeCaching).run(
            svc_small, pool=pool
        )
    serve_par = MultiItemOnlineService(SpeculativeCaching).run(
        svc_small, processes=2
    )
    for other in (serve_pool, serve_par):
        assert serve_serial.total_cost == other.total_cost
        assert serve_serial.counters() == other.counters()
        assert list(serve_serial.runs) == list(other.runs)

    # Leak gate: every segment the fabric created must be unlinked.
    assert active_segments() == (), active_segments()

    payload = {
        "benchmark": "service_throughput",
        "grid": {"items": ITEM_GRID, "processes": PROC_GRID, "m": M},
        "per_item_requests": PER_ITEM,
        "repeats": REPEATS,
        "smoke": SMOKE,
        "usable_cpus": cpus,
        "identity": "per transport and grid point, parallel cost surface "
        "byte-identical to serial (canonical JSON dump compared); columnar "
        "ingest equals CSV ingest item by item",
        "shm_note": "shm rows are persistent-pool steady state (segments "
        "attached, worker instance caches warm)",
        "batch_gate": batch_gate,
        "rows": json_rows,
        "phases": phases,
        "ingest": ingest,
        "end_to_end": e2e,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "service_throughput",
        format_table(rows, precision=4)
        + "\n\nserial batch kernel ({backend} sweep, items={items}): "
        "per-item {per_item_frontier_seconds:.4f}s, batch "
        "{batch_seconds:.4f}s ({serial_speedup:.1f}x, gate "
        "{threshold}x)".format(**batch_gate)
        + "\n\nshm phases (items={items}, {processes} procs): "
        "pack {serialize_attach_seconds:.4f}s, first {first_call_seconds:.4f}s, "
        "steady {steady_call_seconds:.4f}s, merge {merge_seconds:.4f}s".format(
            **phases
        )
        + "\ningest {rows} rows: csv {csv_rows_per_s:,.0f} rows/s, columnar "
        "{columnar_rows_per_s:,.0f} rows/s ({ingest_ratio:.1f}x)".format(
            **ingest
        )
        + "\nend-to-end ({solve_calls} solves, {processes} procs): old "
        "{old_seconds:.3f}s, new {new_seconds:.3f}s ({speedup:.2f}x)".format(
            **e2e
        ),
        header=f"P3: service transports + columnar ingest "
        f"(m={M}, {PER_ITEM} req/item, {cpus} usable cpu(s), "
        f"best of {REPEATS})",
    )

    benchmark(lambda: solve_offline_multi(svc_small, processes=1).total_cost)
