"""P1 — sharded multi-item service throughput (items × processes).

The first perf-trajectory benchmark: sweeps the sharded, process-parallel
``solve_offline_multi`` over item counts and pool sizes, and writes the
repo's first ``BENCH_service_throughput.json`` (at the repository root,
next to the other top-level artefacts) plus a human-readable table under
``benchmarks/out/``.

Two hard checks ride along with the timings:

* **bit-identity** — for every grid point the parallel total cost (and
  the full per-item breakdown) must be *byte-identical* to the serial
  one in the canonical JSON dump; sharding is a throughput knob, never a
  semantics knob.  This is asserted unconditionally.
* **speedup** — the 4-process solve of the ≥64-item workload must be
  ≥2× the serial solve.  Asserted only when the machine actually has
  ≥4 usable cores (a single-core CI box cannot speed anything up; the
  JSON still records the measured ratio honestly).

``SERVICE_BENCH_SMOKE=1`` shrinks the grid to seconds for CI smoke jobs
(items=8, processes ∈ {1, 2}).
"""

import hashlib
import json
import os
import pathlib
import time

from repro import (
    MultiItemOnlineService,
    SpeculativeCaching,
    multi_item_workload,
    solve_offline_multi,
)
from repro.analysis import format_table

from _util import emit

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_service_throughput.json"

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
M = 24
if SMOKE:
    ITEM_GRID = [8]
    PER_ITEM = 40
    PROC_GRID = [1, 2]
    REPEATS = 1
else:
    ITEM_GRID = [16, 96]
    PER_ITEM = 1600
    PROC_GRID = [1, 2, 4]
    REPEATS = 2


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _canonical_costs(off) -> str:
    """Canonical JSON dump of the full cost surface (byte-comparable)."""
    return json.dumps(
        {
            "total": off.total_cost,
            "per_item": {k: v for k, v in off.cost_breakdown().items()},
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_service_throughput(benchmark):
    cpus = _usable_cpus()
    rows, json_rows = [], []
    for num_items in ITEM_GRID:
        svc = multi_item_workload(
            num_items, num_items * PER_ITEM, M, rng=num_items
        )
        t_serial, off_serial = _best_of(lambda: solve_offline_multi(svc), REPEATS)
        canon_serial = _canonical_costs(off_serial)
        for procs in PROC_GRID:
            if procs == 1:
                seconds, canon, match = t_serial, canon_serial, True
            else:
                t_par, off_par = _best_of(
                    lambda: solve_offline_multi(svc, processes=procs), REPEATS
                )
                seconds = t_par
                canon = _canonical_costs(off_par)
                match = canon == canon_serial
                # Semantics gate: sharding must never change a single byte
                # of the cost surface, on any machine.
                assert match, (
                    f"parallel cost surface diverged at items={num_items}, "
                    f"processes={procs}"
                )
            speedup = t_serial / seconds if seconds > 0 else float("inf")
            rows.append(
                {
                    "items": num_items,
                    "requests": svc.total_requests,
                    "processes": procs,
                    "seconds": seconds,
                    "speedup": speedup,
                    "costs == serial": "yes" if match else "NO",
                }
            )
            json_rows.append(
                {
                    "items": num_items,
                    "requests": svc.total_requests,
                    "m": M,
                    "processes": procs,
                    "shards": procs,
                    "seconds": seconds,
                    "speedup_vs_serial": speedup,
                    "costs_match_serial": match,
                    "total_cost": off_serial.total_cost,
                    "canonical_costs_sha": hashlib.sha256(
                        canon.encode()
                    ).hexdigest()[:16],
                }
            )
    # Online serve identity ride-along: one grid point, pool vs serial.
    svc_small = multi_item_workload(ITEM_GRID[0], ITEM_GRID[0] * 30, 8, rng=7)
    serve_serial = MultiItemOnlineService(SpeculativeCaching).run(svc_small)
    serve_par = MultiItemOnlineService(SpeculativeCaching).run(
        svc_small, processes=2
    )
    assert serve_serial.total_cost == serve_par.total_cost
    assert serve_serial.counters() == serve_par.counters()

    payload = {
        "benchmark": "service_throughput",
        "grid": {"items": ITEM_GRID, "processes": PROC_GRID, "m": M},
        "per_item_requests": PER_ITEM,
        "repeats": REPEATS,
        "smoke": SMOKE,
        "usable_cpus": cpus,
        "identity": "parallel cost surface byte-identical to serial "
        "(canonical JSON dump compared per grid point)",
        "rows": json_rows,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "service_throughput",
        format_table(rows, precision=4),
        header=f"P1: sharded multi-item solve throughput "
        f"(m={M}, {PER_ITEM} req/item, {cpus} usable cpu(s), "
        f"best of {REPEATS})",
    )

    # Perf gate: only meaningful where the hardware can parallelise.
    if not SMOKE and cpus >= 4:
        big = [
            r
            for r in json_rows
            if r["items"] >= 64 and r["processes"] == 4
        ]
        assert big and all(r["speedup_vs_serial"] >= 2.0 for r in big), (
            f"expected >=2x speedup at 4 processes on >=64 items, got "
            f"{[r['speedup_vs_serial'] for r in big]}"
        )

    benchmark(lambda: solve_offline_multi(svc_small, processes=1).total_cost)
