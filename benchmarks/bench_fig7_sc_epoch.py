"""Experiment Fig 7 — a Speculative Caching epoch with 5 transfers.

Replays the Fig. 7-shaped epoch through the SC state machine and checks
every behaviour the figure illustrates: window hits, transfers from the
previous requester, speculative tails of at most ``Δt = λ/μ``, lone-copy
extensions, and the epoch reset after the 5th transfer.
"""

import pytest

from repro import solve_offline, validate_schedule
from repro.online import SpeculativeCaching
from repro.paperdata import fig7_instance
from repro.schedule import render_schedule

from _util import emit


def run_epoch():
    inst = fig7_instance()
    return inst, SpeculativeCaching(epoch_size=5).run(inst)


def test_fig7_epoch(benchmark):
    inst, _ = run_epoch()
    run = benchmark(lambda: SpeculativeCaching(epoch_size=5).run(inst))

    opt = solve_offline(inst).optimal_cost
    lines = [
        render_schedule(run.schedule, inst, title="SC schedule (one epoch)"),
        f"transfers  = {run.counters['transfers']}   (epoch size 5)",
        f"local hits = {run.counters['local_hits']}",
        f"extensions = {run.counters['extensions']}  (lone-copy rule)",
        f"epochs     = {run.counters['epochs']}",
        f"Π(SC) = {run.cost:.4g}   Π(OPT) = {opt:.4g}   "
        f"ratio = {run.cost / opt:.4g}  (bound: 3)",
    ]
    emit("fig7_sc_epoch", "\n".join(lines), header="Fig 7 SC epoch (mu=lam=1)")

    validate_schedule(run.schedule, inst)
    assert run.counters["transfers"] == 5
    assert run.counters["epochs"] == 1
    assert run.counters["local_hits"] == 1
    assert run.counters["extensions"] >= 2
    window = inst.cost.speculative_window
    for life in run.lifetimes:
        assert life.tail() <= window + 1e-9
    assert run.cost <= 3.0 * opt + 1e-9
