"""C2/P10 — batched competitive-ratio harness: identity gate + speedup gate.

Standalone script (also runnable under pytest) benchmarking the
``repro.kernels.online`` batched harness against the historic per-seed
loop and writing ``BENCH_online_kernels.json`` at the repository root:

* **workload panels** — ratio distribution of SC vs OPT across Poisson×
  Zipf, bursty MMPP, and Markov-trajectory instances.  Two gates, both
  unconditional (``--quick`` included): the empirical worst ratio never
  exceeds the Theorem 3 bound of 3, and the batched vector harness
  reproduces the per-event oracle's ratios *exactly* — same floats, same
  decision digests, not approximately.
* **ratio-sweep speedup gate** — the headline: one
  :func:`repro.analysis.parallel.ratio_study` call (seeds chunked into
  blocks, ONE batched online-kernel call + ONE batched DP call per
  block, blocks fanned across the process pool) vs the historic loop
  (per-seed ``SpeculativeCaching().run(inst, kernel="event")`` plus a
  per-seed ``solve_offline``).  The ratio lists must match exactly; the
  ≥10x wall-clock gate is hard in full mode on boxes with ≥4 CPUs and
  soft-warns elsewhere (``--quick``, or 1–2 core runners where the
  block-parallel term physically cannot materialise).
* **TTL γ-grid series** — :func:`repro.analysis.ttl_gamma_sweep`
  broadcasting one packed instance block over the γ grid vs the
  per-event per-γ loop: identical rows (exact), measured speedup.
* **adversarial panel** — the cyclic gap sweep locating SC's empirically
  worst regime (per-server revisit period just past the speculative
  window); rows must agree across kernels and stay under the bound.

Usage::

    PYTHONPATH=src python benchmarks/bench_competitive_ratio.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:  # standalone invocation without install
    sys.path.insert(0, str(ROOT / "src"))

from repro import CostModel, solve_offline  # noqa: E402
from repro.analysis import (  # noqa: E402
    adversarial_gap_sweep,
    format_table,
    ratio_statistics,
    ttl_gamma_sweep,
)
from repro.analysis.parallel import ratio_study  # noqa: E402
from repro.kernels.online import decision_digest  # noqa: E402
from repro.network import Cluster  # noqa: E402
from repro.online import SpeculativeCaching  # noqa: E402
from repro.sim.engine import run_online  # noqa: E402
from repro.workloads import (  # noqa: E402
    MarkovMobility,
    mmpp_instance,
    poisson_zipf_instance,
)

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from _util import emit  # noqa: E402

JSON_PATH = ROOT / "BENCH_online_kernels.json"

#: Headline gate: batched block-parallel ratio study vs the historic
#: per-seed loop.  Hard in full mode on >=4-CPU boxes; soft elsewhere.
SWEEP_SPEEDUP_GATE = 10.0
SWEEP_GATE_MIN_CPUS = 4

#: Ratio-sweep workload shape (module-level so pool workers can build it).
RATIO_N, RATIO_M = 200, 8


def _ratio_workload(seed: int):
    return poisson_zipf_instance(
        RATIO_N, RATIO_M, rate=1.2, zipf_s=0.9, rng=seed
    )


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def workload_panels(per_panel: int = 10):
    panels = {}
    panels["poisson-zipf"] = [
        poisson_zipf_instance(120, 6, rate=1.2, zipf_s=1.0, rng=s)
        for s in range(per_panel)
    ]
    panels["bursty-mmpp"] = [
        mmpp_instance(120, 6, rate_low=0.2, rate_high=8.0, rng=s)
        for s in range(per_panel)
    ]
    cluster = Cluster.grid(2, 3, cost=CostModel())
    mob = MarkovMobility(cluster, locality=0.85, request_rate=1.0)
    panels["markov-trajectory"] = [
        mob.instance(num_users=2, duration=60.0, rng=s)
        for s in range(per_panel)
    ]
    return panels


def _historic_ratio_loop(seeds):
    """The pre-batching harness: per-seed event replay + per-seed DP."""
    out = []
    for s in seeds:
        inst = _ratio_workload(s)
        cost = run_online(SpeculativeCaching(), inst, kernel="event").cost
        opt = solve_offline(inst).optimal_cost
        out.append(cost / opt if opt > 0 else float("inf"))
    return out


def run_bench(quick: bool) -> dict:
    repeats = 1 if quick else 3
    per_panel = 6 if quick else 10
    sweep_seeds = list(range(16 if quick else 96))
    gammas = [0.5, 1.0, 2.0] if quick else [0.25, 0.5, 1.0, 2.0, 4.0]
    cpus = os.cpu_count() or 1

    failures = []

    # Panel 1: ratio distributions, vector vs per-event — exact identity.
    panels = workload_panels(per_panel)
    panel_rows = []
    for name, insts in panels.items():
        vec = ratio_statistics(insts, kernel="vector")
        ev = ratio_statistics(insts, kernel="event")
        identical = list(vec.ratios) == list(ev.ratios)
        if not identical:
            failures.append(f"panel '{name}': vector ratios != event ratios")
        digests_equal = all(
            decision_digest(SpeculativeCaching().run(inst, kernel="vector"))
            == decision_digest(SpeculativeCaching().run(inst, kernel="event"))
            for inst in insts
        )
        if not digests_equal:
            failures.append(f"panel '{name}': decision digests diverge")
        if not vec.worst <= 3.0 + 1e-6:
            failures.append(
                f"panel '{name}': worst ratio {vec.worst} exceeds bound 3"
            )
        panel_rows.append(
            {
                "workload": name,
                "instances": len(insts),
                "mean ratio": vec.mean,
                "p95 ratio": vec.p95,
                "worst ratio": vec.worst,
                "bound": 3.0,
                "identical": identical and digests_equal,
            }
        )

    # Panel 2: the headline sweep.  Historic per-seed loop vs one
    # block-parallel ratio_study call (the ratios must match exactly).
    t_loop, ratios_loop = _best_of(
        lambda: _historic_ratio_loop(sweep_seeds), repeats
    )
    t_batch, ratios_batch = _best_of(
        lambda: ratio_study(
            _ratio_workload,
            sweep_seeds,
            SpeculativeCaching,
            processes=max(1, cpus),
        ),
        repeats,
    )
    sweep_identical = ratios_loop == ratios_batch
    if not sweep_identical:
        failures.append("ratio sweep: batched study != historic loop")
    sweep_row = {
        "seeds": len(sweep_seeds),
        "n": RATIO_N,
        "m": RATIO_M,
        "cpus": cpus,
        "historic_loop_s": t_loop,
        "batched_study_s": t_batch,
        "speedup": t_loop / t_batch if t_batch > 0 else float("inf"),
        "identical": sweep_identical,
    }

    # Panel 3: TTL γ-grid — one packed block broadcast over γ vs the
    # per-event per-γ loop.
    gamma_insts = [
        poisson_zipf_instance(150, 6, rate=1.0, zipf_s=0.9, rng=1000 + s)
        for s in range(per_panel)
    ]
    t_gvec, rows_gvec = _best_of(
        lambda: ttl_gamma_sweep(gamma_insts, gammas), repeats
    )
    t_gev, rows_gev = _best_of(
        lambda: ttl_gamma_sweep(gamma_insts, gammas, kernel="event"), repeats
    )
    gamma_identical = [r["ratios"] for r in rows_gvec] == [
        r["ratios"] for r in rows_gev
    ]
    if not gamma_identical:
        failures.append("ttl γ-grid: vector rows != event rows")
    gamma_rows = [
        {
            "gamma": r["gamma"],
            "mean ratio": r["mean"],
            "worst ratio": r["worst"],
        }
        for r in rows_gvec
    ]
    gamma_series = {
        "instances": len(gamma_insts),
        "gammas": gammas,
        "event_s": t_gev,
        "vector_s": t_gvec,
        "speedup": t_gev / t_gvec if t_gvec > 0 else float("inf"),
        "identical": gamma_identical,
        "rows": gamma_rows,
    }

    # Panel 4: adversarial gap sweep — kernel agreement + bound.
    adv_rounds = 10 if quick else 25
    adv_vec = adversarial_gap_sweep(m=4, rounds=adv_rounds)
    adv_ev = adversarial_gap_sweep(m=4, rounds=adv_rounds, kernel="event")
    adv_identical = adv_vec == adv_ev
    if not adv_identical:
        failures.append("adversarial sweep: vector rows != event rows")
    adv_worst = max(r["ratio"] for r in adv_vec)
    if not adv_worst <= 3.0 + 1e-9:
        failures.append(f"adversarial sweep: worst ratio {adv_worst} > 3")
    if not adv_worst > 1.5:
        failures.append(
            f"adversarial sweep: worst ratio {adv_worst} <= 1.5 "
            f"(the adversary should hurt SC)"
        )

    return {
        "benchmark": "online_kernels",
        "quick": quick,
        "repeats": repeats,
        "cpus": cpus,
        "identity": "vector harness ratios, rows and decision digests "
        "equal the per-event oracle exactly (no tolerances)",
        "sweep_gate": {
            "threshold": SWEEP_SPEEDUP_GATE,
            "hard_min_cpus": SWEEP_GATE_MIN_CPUS,
            "measured": sweep_row["speedup"],
        },
        "workload_panels": panel_rows,
        "ratio_sweep": sweep_row,
        "ttl_gamma_series": gamma_series,
        "adversarial": {
            "m": 4,
            "rounds": adv_rounds,
            "identical": adv_identical,
            "worst_ratio": adv_worst,
            "rows": adv_vec,
        },
        "failures": failures,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small panels for CI smoke: identity gates still hard, "
        "speedup gate soft-warns",
    )
    ap.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help=f"output path (default {JSON_PATH}; quick runs don't overwrite "
        "the committed artefact unless asked)",
    )
    args = ap.parse_args(argv)

    payload = run_bench(args.quick)
    out = args.json
    if out is None:
        # A --quick run on a laptop/CI box must not clobber the committed
        # full-scale artefact that README/EXPERIMENTS cite.
        out = JSON_PATH if not args.quick else None
    if out is not None:
        out.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "online_kernels",
        format_table(payload["workload_panels"], precision=4)
        + "\n\nratio sweep (historic per-seed loop vs batched study):\n"
        + format_table([payload["ratio_sweep"]], precision=4)
        + "\n\nTTL γ-grid (one packed block broadcast over γ):\n"
        + format_table(payload["ttl_gamma_series"]["rows"], precision=4)
        + f"\nγ-grid: event {payload['ttl_gamma_series']['event_s']:.4f}s, "
        f"vector {payload['ttl_gamma_series']['vector_s']:.4f}s "
        f"({payload['ttl_gamma_series']['speedup']:.2f}x)\n"
        + "\nadversarial gap sweep (m=4):\n"
        + format_table(payload["adversarial"]["rows"], precision=4),
        header="C2/P10: SC/OPT ratios on the batched online-kernel harness "
        "(identity vs per-event oracle asserted everywhere; "
        f"sweep gate ≥{SWEEP_SPEEDUP_GATE}x)",
    )

    if payload["failures"]:
        for msg in payload["failures"]:
            print(f"IDENTITY VIOLATION: {msg}", file=sys.stderr)
        return 1

    gate = payload["sweep_gate"]
    cpus = payload["cpus"]
    if gate["measured"] < SWEEP_SPEEDUP_GATE:
        msg = (
            f"sweep speedup gate: measured {gate['measured']:.2f}x < "
            f"{SWEEP_SPEEDUP_GATE}x ({cpus} CPUs)"
        )
        # The gate multiplies the raw kernel win by block parallelism; on
        # 1–2 core boxes the parallel term physically cannot materialise,
        # so it is only hard in full mode with >=4 CPUs.
        if args.quick or cpus < SWEEP_GATE_MIN_CPUS:
            print(f"WARNING (soft): {msg}", file=sys.stderr)
        else:
            print(f"FAILED: {msg}", file=sys.stderr)
            return 1
    else:
        print(
            f"sweep speedup gate passed: {gate['measured']:.2f}x >= "
            f"{SWEEP_SPEEDUP_GATE}x ({cpus} CPUs)"
        )
    return 0


def test_online_kernels_quick():
    """Pytest entry: the quick panels' identity gates must hold."""
    payload = run_bench(quick=True)
    assert payload["failures"] == []


if __name__ == "__main__":
    sys.exit(main())
