"""Experiment C2 — the 3-competitiveness claim (Contribution 2).

Two panels:

* **random workloads** — ratio distribution of SC vs OPT across Poisson×
  Zipf, bursty MMPP, and Markov-trajectory instances (the ratio should sit
  well under 3 and never exceed it);
* **adversarial panel** — the cyclic gap sweep locating SC's empirically
  worst regime (per-server revisit period just past the speculative
  window; see :mod:`repro.analysis.competitive`).
"""

import pytest

from repro import CostModel
from repro.analysis import adversarial_gap_sweep, format_table, ratio_statistics
from repro.network import Cluster
from repro.online import SpeculativeCaching
from repro.workloads import MarkovMobility, mmpp_instance, poisson_zipf_instance

from _util import emit


def workload_panels():
    panels = {}
    panels["poisson-zipf"] = [
        poisson_zipf_instance(120, 6, rate=1.2, zipf_s=1.0, rng=s)
        for s in range(10)
    ]
    panels["bursty-mmpp"] = [
        mmpp_instance(120, 6, rate_low=0.2, rate_high=8.0, rng=s)
        for s in range(10)
    ]
    cluster = Cluster.grid(2, 3, cost=CostModel())
    mob = MarkovMobility(cluster, locality=0.85, request_rate=1.0)
    panels["markov-trajectory"] = [
        mob.instance(num_users=2, duration=60.0, rng=s) for s in range(10)
    ]
    return panels


def test_ratio_across_workloads(benchmark):
    panels = workload_panels()
    rows = []
    for name, insts in panels.items():
        stats = ratio_statistics(insts)
        rows.append(
            {
                "workload": name,
                "mean ratio": stats.mean,
                "p95 ratio": stats.p95,
                "worst ratio": stats.worst,
                "bound": 3.0,
            }
        )
        assert stats.worst <= 3.0 + 1e-6
    emit(
        "competitive_ratio_workloads",
        format_table(rows, precision=4),
        header="C2: empirical SC/OPT ratio by workload family (bound: 3)",
    )

    inst = panels["poisson-zipf"][0]
    benchmark(lambda: SpeculativeCaching().run(inst))


def test_adversarial_gap_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: adversarial_gap_sweep(m=4, rounds=25),
        rounds=1,
        iterations=1,
    )
    emit(
        "competitive_ratio_adversary",
        format_table(rows, precision=4),
        header="C2: cyclic adversary gap sweep (m=4, 25 rounds per point)",
    )
    worst = max(r["ratio"] for r in rows)
    assert worst <= 3.0 + 1e-9
    assert worst > 1.5  # the adversary does hurt SC
