"""P9 — hash-sampled trace solving: error-vs-rate + speedup-vs-rate.

Standalone script (also runnable under pytest) benchmarking
``repro.workloads.sampling`` and ``repro.workloads.profiler`` on a
synthetic Zipf trace (>= 1M rows in full mode) and writing
``BENCH_trace_sampling.json`` at the repository root:

* **error gate (hard, always)** — at every sample rate in the grid,
  ``estimate_offline_cost``'s confidence interval must cover the exact
  full-trace solve, and the point estimate must sit within 10% of it.
* **determinism gate (hard, always)** — sampling a row-permuted,
  re-interned copy of the trace with different ``chunk_rows`` must
  produce a byte-identical container file (sha256 compared).
* **speedup gate** — at the headline rate the estimate's *solve*
  wall-time (gather + pack + DP sweep of the selected items, i.e.
  ``CostEstimate.solve_s``) must be >= 10x below the exact solve; the
  end-to-end estimate time — which adds the O(rows) counting pass and
  the bootstrap, both fixed-cost — is reported alongside.  Hard in full
  mode on boxes with >= 4 cpus; soft-warns in ``--quick`` mode and on
  small runners, where the solve is too short for stable timing.
* **profiler RSS gate (hard, always)** — ``profile_trace`` over the
  full trace must grow this process's VmRSS by less than a fixed budget
  (memmap-native sweep, no record materialisation).

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_sampling.py [--quick]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import sys
import tempfile
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:  # standalone invocation without install
    sys.path.insert(0, str(ROOT / "src"))

from repro.kernels import batch_sweep_backend  # noqa: E402
from repro.workloads import (  # noqa: E402
    ColumnarTrace,
    estimate_offline_cost,
    exact_offline_cost,
    profile_trace,
    sample_columnar,
    zipf_weights,
)
from repro.analysis import format_table  # noqa: E402

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from _util import emit  # noqa: E402

JSON_PATH = ROOT / "BENCH_trace_sampling.json"

#: Sample-rate grid (full mode); the ISSUE's 1-10% regime.
RATES = (0.01, 0.02, 0.05, 0.1)
RATES_QUICK = (0.02, 0.05, 0.1)

#: Headline speedup gate: estimate at this rate vs the exact solve.
HEADLINE_RATE = 0.05
SPEEDUP_GATE = 10.0

#: Point-estimate error budget (CI coverage is gated separately).
REL_ERROR_GATE = 0.10

#: Profiler RSS growth budget in KiB (1M rows of flat arrays is ~30 MB;
#: record materialisation would be ~400+ MB).
RSS_GATE_KB = 500_000

SEED = 7

#: Certainty-stratum size.  Solving the head exactly is what keeps the
#: estimator calibrated, but its rows are solved at rate 1.0 — the
#: stratum must stay a small *row* share or it caps the speedup.  With
#: the long-tailed catalog below (zipf s=0.5 over 20k items) the top 32
#: items hold ~4% of rows.
TOP_EXACT = 32

#: Popularity skew.  A catalog-scale long tail (many items, mild Zipf) —
#: the regime where sampling pays; a head-heavy s=1.0 catalog should be
#: solved exactly instead (its certainty stratum IS most of the rows).
ZIPF_S = 0.5


def _rss_kb(pid: int) -> int:
    """VmRSS of ``pid`` in KiB, from /proc (no psutil dependency)."""
    with open(f"/proc/{pid}/status", "r", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError(f"no VmRSS line for pid {pid}")


def _sha(path: pathlib.Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def synth_trace(rows: int, items: int, m: int, seed: int) -> ColumnarTrace:
    """Zipf-popularity Poisson-arrival synthetic service log."""
    rng = np.random.default_rng(seed)
    ids = rng.choice(items, size=rows, p=zipf_weights(items, ZIPF_S))
    return ColumnarTrace(
        np.cumsum(rng.exponential(0.01, size=rows)),
        rng.integers(0, m, size=rows),
        np.full(rows, -1),
        ids,
        tuple(f"item-{k:05d}" for k in range(items)),
    )


def permuted_copy(trace: ColumnarTrace, seed: int) -> ColumnarTrace:
    """Same row set, shuffled row order AND shuffled interning order."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(trace.rows)
    n_items = len(trace.item_table)
    reorder = rng.permutation(n_items)
    old_to_new = np.empty(n_items, dtype=np.int64)
    old_to_new[reorder] = np.arange(n_items)
    return ColumnarTrace(
        np.asarray(trace.times)[perm],
        np.asarray(trace.servers)[perm],
        np.asarray(trace.users)[perm],
        old_to_new[np.asarray(trace.item_ids)[perm]],
        tuple(trace.item_table[int(i)] for i in reorder),
    )


def run_bench(quick: bool) -> dict:
    if quick:
        rows, items, m = 100_000, 2_000, 8
        rates = RATES_QUICK
    else:
        rows, items, m = 1_000_000, 20_000, 16
        rates = RATES
    failures = []
    trace = synth_trace(rows, items, m, seed=5)

    # Exact full-trace solve (the baseline both gates compare against).
    t0 = time.perf_counter()
    exact = exact_offline_cost(trace)
    exact_s = time.perf_counter() - t0

    rate_rows = []
    for rate in rates:
        t0 = time.perf_counter()
        est = estimate_offline_cost(
            trace, rate=rate, seed=SEED, top_exact=TOP_EXACT
        )
        est_s = time.perf_counter() - t0
        rel_err = abs(est.estimate - exact) / exact
        covered = est.covers(exact)
        if not covered:
            failures.append(
                f"CI at rate {rate} missed the exact cost: "
                f"[{est.ci_lo:.6g}, {est.ci_hi:.6g}] vs {exact:.6g}"
            )
        if rel_err > REL_ERROR_GATE:
            failures.append(
                f"estimate at rate {rate} off by {rel_err:.2%} "
                f"(> {REL_ERROR_GATE:.0%})"
            )
        rate_rows.append(
            {
                "rate": rate,
                "estimate": est.estimate,
                "ci_lo": est.ci_lo,
                "ci_hi": est.ci_hi,
                "ci_covers_exact": covered,
                "rel_error": rel_err,
                "rel_ci_width": (est.ci_hi - est.ci_lo) / exact,
                "solve_fraction": est.solve_fraction,
                "items_solved": est.items_solved,
                "estimate_s": est_s,
                "solve_s": est.solve_s,
                "speedup_total": exact_s / est_s if est_s > 0 else 0.0,
                "solve_speedup": (
                    exact_s / est.solve_s if est.solve_s > 0 else 0.0
                ),
            }
        )

    # Byte-determinism: permuted + re-interned copy, different chunking,
    # ideally a different process boundary too (covered by the test
    # suite); the committed artefact records the sha256 agreement.
    with tempfile.TemporaryDirectory() as td:
        tdp = pathlib.Path(td)
        sample_columnar(trace, tdp / "a.col", 0.1, seed=SEED, chunk_rows=1 << 20)
        sample_columnar(
            permuted_copy(trace, seed=13),
            tdp / "b.col",
            0.1,
            seed=SEED,
            chunk_rows=striped_chunk(rows),
        )
        sha_a, sha_b = _sha(tdp / "a.col"), _sha(tdp / "b.col")
    det_identical = sha_a == sha_b
    if not det_identical:
        failures.append(
            "sampled containers diverged across permutation/chunking: "
            f"{sha_a[:12]} vs {sha_b[:12]}"
        )

    # Profiler sweep with the RSS gate.
    rss_before = _rss_kb(os.getpid())
    t0 = time.perf_counter()
    stats = profile_trace(trace)
    profile_s = time.perf_counter() - t0
    rss_after = _rss_kb(os.getpid())
    rss_growth = rss_after - rss_before
    if rss_growth > RSS_GATE_KB:
        failures.append(
            f"profiler RSS grew {rss_growth} KiB (> {RSS_GATE_KB} KiB)"
        )

    headline = next(
        (r for r in rate_rows if r["rate"] == HEADLINE_RATE), None
    )
    return {
        "benchmark": "trace_sampling",
        "quick": quick,
        "rows": rows,
        "items": items,
        "m": m,
        "zipf_s": ZIPF_S,
        "seed": SEED,
        "top_exact": TOP_EXACT,
        "backend": batch_sweep_backend(),
        "cpus": os.cpu_count(),
        "exact_cost": exact,
        "exact_solve_s": exact_s,
        "rates": rate_rows,
        "determinism": {
            "sha256_original": sha_a,
            "sha256_permuted_rechunked": sha_b,
            "identical": det_identical,
        },
        "profiler": {
            "profile_s": profile_s,
            "rss_growth_kb": rss_growth,
            "rss_gate_kb": RSS_GATE_KB,
            "zipf_exponent": stats.zipf_exponent,
            "mean_max_predictability": stats.mean_max_predictability,
        },
        "speedup_gate": {
            "at_rate": HEADLINE_RATE,
            "threshold": SPEEDUP_GATE,
            "measured": headline["solve_speedup"] if headline else None,
            "total_speedup": headline["speedup_total"] if headline else None,
        },
        "failures": failures,
    }


def striped_chunk(rows: int) -> int:
    """An awkward chunk size (not a divisor, not a power of two)."""
    return max(1, rows // 7 + 3)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="100k-row trace for CI smoke: error + determinism + RSS "
        "gates still hard, speedup gate soft-warns",
    )
    ap.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help=f"output path (default {JSON_PATH}; quick runs don't "
        "overwrite the committed artefact unless asked)",
    )
    args = ap.parse_args(argv)

    payload = run_bench(args.quick)
    out = args.json
    if out is None:
        # A --quick run on a CI box must not clobber the committed
        # full-trace artefact that README/EXPERIMENTS cite.
        out = JSON_PATH if not args.quick else None
    if out is not None:
        out.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "trace_sampling",
        format_table(payload["rates"], precision=4)
        + f"\n\nexact cost {payload['exact_cost']:.6g} "
        f"in {payload['exact_solve_s']:.3f}s "
        f"(rows={payload['rows']}, items={payload['items']}, "
        f"m={payload['m']}, backend={payload['backend']})"
        + "\ndeterminism: "
        + (
            "byte-identical across permutation + rechunking"
            if payload["determinism"]["identical"]
            else "DIVERGED"
        )
        + f"\nprofiler: {payload['profiler']['profile_s']:.3f}s, "
        f"RSS growth {payload['profiler']['rss_growth_kb']} KiB "
        f"(gate {payload['profiler']['rss_gate_kb']} KiB)",
        header="P9: hash-sampled trace solving — error/speedup vs rate "
        f"(CI coverage + <= {REL_ERROR_GATE:.0%} error hard at every "
        f"rate; solve_speedup >= {SPEEDUP_GATE}x at rate "
        f"{HEADLINE_RATE} on big boxes)",
    )

    if payload["failures"]:
        for msg in payload["failures"]:
            print(f"GATE VIOLATION: {msg}", file=sys.stderr)
        return 1

    gate = payload["speedup_gate"]
    if gate["measured"] is None:
        print(
            f"speedup gate: headline rate {HEADLINE_RATE} not in this "
            "grid; skipped"
        )
    elif gate["measured"] < SPEEDUP_GATE:
        msg = (
            f"speedup gate: measured solve speedup {gate['measured']:.2f}x "
            f"< {SPEEDUP_GATE}x at rate {HEADLINE_RATE}"
        )
        # Hard only where timing is meaningful: full mode on a multi-core
        # box.  Quick CI smoke and small runners soft-warn.
        if args.quick or (os.cpu_count() or 1) < 4:
            print(f"WARNING (soft on small runners): {msg}", file=sys.stderr)
        else:
            print(f"FAILED: {msg}", file=sys.stderr)
            return 1
    else:
        print(
            f"speedup gate passed: solve speedup {gate['measured']:.2f}x "
            f">= {SPEEDUP_GATE}x at rate {HEADLINE_RATE} "
            f"(end-to-end {gate['total_speedup']:.2f}x)"
        )
    return 0


def test_trace_sampling_quick():
    """Pytest entry: error, determinism and RSS gates must hold."""
    payload = run_bench(quick=True)
    assert payload["failures"] == []


if __name__ == "__main__":
    sys.exit(main())
