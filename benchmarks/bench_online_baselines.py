"""Ablation A3 — SC against the online baselines.

Cost ratios (policy / OPT) for SC, AlwaysTransfer (single migrating
copy), NeverDelete (replicate and hoard), and ski-rental RandomizedTTL,
across three workload regimes.  The expected shape:

* local/bursty regimes: SC ≈ NeverDelete << AlwaysTransfer,
* sparse regimes: SC ≈ AlwaysTransfer << NeverDelete,
* SC alone is good everywhere (that is the point of Theorem 3), with
  RandomizedTTL typically between SC and the losers.
"""

import numpy as np
import pytest

from repro import solve_offline
from repro.analysis import format_table
from repro.online import (
    AlwaysTransfer,
    NeverDelete,
    RandomizedTTL,
    SpeculativeCaching,
    WorkFunctionCaching,
)
from repro.workloads import poisson_zipf_instance

from _util import emit


def regimes():
    # rate >> mu/lam: windows almost always hit (dense); rate << 1: sparse.
    return {
        "dense (rate 5)": [
            poisson_zipf_instance(120, 5, rate=5.0, zipf_s=0.8, rng=s)
            for s in range(6)
        ],
        "medium (rate 1)": [
            poisson_zipf_instance(120, 5, rate=1.0, zipf_s=0.8, rng=s)
            for s in range(6)
        ],
        "sparse (rate 0.2)": [
            poisson_zipf_instance(120, 5, rate=0.2, zipf_s=0.8, rng=s)
            for s in range(6)
        ],
    }


def policies():
    return {
        "SC": lambda: SpeculativeCaching(),
        "always-transfer": lambda: AlwaysTransfer(),
        "never-delete": lambda: NeverDelete(),
        "randomized-ttl": lambda: RandomizedTTL(seed=0),
        "work-function": lambda: WorkFunctionCaching(),
    }


def test_online_baselines(benchmark):
    rows = []
    mean_ratio = {}
    for regime, insts in regimes().items():
        opts = [solve_offline(i).optimal_cost for i in insts]
        row = {"regime": regime}
        for name, factory in policies().items():
            ratios = [
                factory().run(inst).cost / opt for inst, opt in zip(insts, opts)
            ]
            row[name] = float(np.mean(ratios))
            mean_ratio[(regime, name)] = row[name]
        rows.append(row)
    emit(
        "online_baselines",
        format_table(rows, precision=4),
        header="A3: mean cost ratio vs OPT by policy and regime",
    )

    # SC dominates the wrong-regime losers on their bad sides.
    assert (
        mean_ratio[("dense (rate 5)", "SC")]
        < mean_ratio[("dense (rate 5)", "always-transfer")]
    )
    assert (
        mean_ratio[("sparse (rate 0.2)", "SC")]
        < mean_ratio[("sparse (rate 0.2)", "never-delete")]
    )
    # SC respects its bound in every regime.
    for regime in regimes():
        assert mean_ratio[(regime, "SC")] <= 3.0 + 1e-6

    inst = poisson_zipf_instance(120, 5, rate=1.0, rng=0)
    benchmark(lambda: SpeculativeCaching().run(inst))
