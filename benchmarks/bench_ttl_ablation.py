"""Ablation A1 — why the speculative window is ``Δt = λ/μ``.

Sweeps the TTL family ``TTL(γ·λ/μ)`` over γ from 0.1 to 10 and measures
the worst and mean cost ratio versus the off-line optimum across a mixed
panel.  The panel must contain both failure modes or the sweep lies:

* *short-revisit alternation* (two servers ping-ponging with gaps of
  0.2-0.45 windows) punishes small γ — the copy dies right before its
  server is revisited, so ``TTL(0.1λ/μ)`` pays a transfer per request
  and even breaches the factor-3 line (only γ=1 carries the guarantee);
* *cyclic adversaries and sparse traffic* punish large γ — dead rent.

The paper's γ=1 (rent/buy break-even) minimises the worst case over the
panel; both extremes degrade.
"""

import numpy as np
import pytest

from repro import solve_offline
from repro.analysis import alternating_adversary, cyclic_adversary, format_table
from repro.online import SpeculativeCaching
from repro.workloads import mmpp_instance, poisson_zipf_instance

from _util import emit

GAMMAS = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0]


def panel():
    insts = [
        poisson_zipf_instance(100, 5, rate=1.2, zipf_s=1.0, rng=s) for s in range(6)
    ]
    insts += [mmpp_instance(100, 5, rng=s) for s in range(6)]
    insts += [cyclic_adversary(4, 20, gf) for gf in (0.3, 0.5, 1.2, 2.0)]
    # Short-revisit alternation: the regime that punishes small windows.
    insts += [alternating_adversary(30, gf) for gf in (0.2, 0.3, 0.45)]
    return insts


def test_ttl_window_ablation(benchmark):
    insts = panel()
    opts = [solve_offline(i).optimal_cost for i in insts]
    rows = []
    for gamma in GAMMAS:
        ratios = np.array(
            [
                SpeculativeCaching(window_factor=gamma).run(inst).cost / opt
                for inst, opt in zip(insts, opts)
            ]
        )
        rows.append(
            {
                "gamma": gamma,
                "window": "λ/μ × γ",
                "mean ratio": float(ratios.mean()),
                "worst ratio": float(ratios.max()),
            }
        )
    emit(
        "ttl_ablation",
        format_table(rows, headers=["gamma", "mean ratio", "worst ratio"], precision=4),
        header="A1: TTL window ablation (γ=1 is the paper's SC)",
    )

    by_gamma = {r["gamma"]: r["worst ratio"] for r in rows}
    # The paper's window must beat the extreme settings on worst case.
    assert by_gamma[1.0] < by_gamma[0.1]
    assert by_gamma[1.0] < by_gamma[0.25]
    assert by_gamma[1.0] < by_gamma[4.0]
    assert by_gamma[1.0] < by_gamma[10.0]
    # Only γ=1 carries the proven bound; the panel shows γ=0.1 breach it.
    assert by_gamma[1.0] <= 3.0 + 1e-9
    assert by_gamma[0.1] > 3.0

    inst = insts[0]
    benchmark(lambda: SpeculativeCaching(window_factor=2.0).run(inst))
