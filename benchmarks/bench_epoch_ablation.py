"""Ablation A2 — the effect of the epoch size.

The paper's SC operates in epochs of ``n`` transfers, resetting all state
(every copy except the requester's) at each boundary.  The competitive
bound holds per epoch for any size, but the *practical* effect of the
reset cuts both ways, and this ablation demonstrates both regimes:

* **dense, multi-hot workloads** (high rate, flat popularity): the reset
  destroys replicas that were about to serve hits — small epochs hurt
  (measured ≈ 2.2× vs ≈ 1.25× at epoch ∞ on rate-10 traffic);
* **medium-rate workloads**: most speculative copies are pure rent, so
  the reset acts as an extra eviction pass — small epochs *help*
  (measured ≈ 1.26× at epoch 1 vs ≈ 1.57× at ∞ on rate-2 traffic).

Either way every setting respects the Theorem-3 bound.
"""

import numpy as np
import pytest

from repro import solve_offline
from repro.analysis import format_table
from repro.online import SpeculativeCaching
from repro.workloads import poisson_zipf_instance

from _util import emit

EPOCHS = [1, 2, 5, 10, 50, None]


def _panel(rate, zipf_s):
    return [
        poisson_zipf_instance(150, 4, rate=rate, zipf_s=zipf_s, rng=s)
        for s in range(8)
    ]


def _sweep(insts):
    opts = [solve_offline(i).optimal_cost for i in insts]
    out = {}
    for epoch in EPOCHS:
        ratios, resets = [], []
        for inst, opt in zip(insts, opts):
            run = SpeculativeCaching(epoch_size=epoch).run(inst)
            ratios.append(run.cost / opt)
            resets.append(run.counters["epochs"])
        out[epoch] = (float(np.mean(ratios)), float(np.mean(resets)))
    return out


def test_epoch_size_ablation(benchmark):
    dense = _sweep(_panel(rate=10.0, zipf_s=0.3))
    medium = _sweep(_panel(rate=2.0, zipf_s=1.0))

    rows = []
    for epoch in EPOCHS:
        rows.append(
            {
                "epoch size": "inf" if epoch is None else epoch,
                "dense ratio (rate 10)": dense[epoch][0],
                "medium ratio (rate 2)": medium[epoch][0],
                "mean resets (dense)": dense[epoch][1],
            }
        )
    emit(
        "epoch_ablation",
        format_table(rows, precision=4),
        header="A2: epoch-size ablation — resets hurt dense multi-hot "
        "traffic, help medium-rate traffic",
    )

    # Both regimes bounded by Theorem 3 (per-epoch guarantee).
    for table in (dense, medium):
        assert all(r <= 3.0 + 1e-6 for r, _ in table.values())
    # Dense multi-hot traffic: resets destroy useful replicas.
    assert dense[None][0] < dense[1][0]
    # Medium traffic: resets act as extra eviction and help.
    assert medium[1][0] < medium[None][0]
    # Reset counts fall monotonically with epoch size.
    resets = [dense[e][1] for e in EPOCHS]
    assert all(a >= b for a, b in zip(resets, resets[1:]))

    inst = _panel(rate=2.0, zipf_s=1.0)[0]
    benchmark(lambda: SpeculativeCaching(epoch_size=5).run(inst))
