"""Experiment C1 — the O(mn) speed-up claim (Contribution 1).

The paper claims its DP is ``O(m log m)×`` faster than Veeravalli's
``O(n m² log m)`` algorithm.  That algorithm is not published in a
reproducible form (DESIGN.md, Substitutions), so the comparison is run
against the two in-repo reference solvers that bracket it:

* naive ``O(n²)`` sweep (the "straightforward implementation" the paper
  itself names), and
* binary-search pivots, ``O(n m log n)``.

All solvers produce bit-identical cost vectors (asserted), so the timing
series measures pure algorithmic speed-up.  The shape to check: the fast
DP's advantage over the naive sweep grows linearly in ``n`` and its
advantage over the bisect variant grows with ``log n`` — i.e. who wins
never changes, and the gap widens exactly as the complexity classes say.

Since the ``repro.kernels`` PR, the default ``solve_offline`` path is
``kernel="auto"`` → the ``O(n + m + P)`` frontier kernel; the tables
keep a ``kernel="reference"`` column so the before/after of that switch
stays recorded in ``benchmarks/out/`` (the deeper kernel grid lives in
``bench_dp_kernels.py`` / ``BENCH_dp_kernels.json``).
"""

import time

import pytest

from repro import solve_offline, solve_offline_bisect, solve_offline_naive
from repro.analysis import format_table
from repro.workloads import poisson_zipf_instance

from _util import emit


def _time(fn, *args, **kwargs):
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def test_scaling_in_n(benchmark):
    rows = []
    for n in (200, 500, 1000, 2000):
        inst = poisson_zipf_instance(n, 16, rate=1.0, zipf_s=1.0, rng=0)
        fast = solve_offline(inst)  # kernel="auto" -> frontier
        assert fast.agrees_with(solve_offline(inst, kernel="reference"))
        assert fast.agrees_with(solve_offline_naive(inst))
        assert fast.agrees_with(solve_offline_bisect(inst))
        t_fast = min(_time(solve_offline, inst) for _ in range(3))
        t_ref = min(
            _time(solve_offline, inst, kernel="reference") for _ in range(3)
        )
        t_bis = min(_time(solve_offline_bisect, inst) for _ in range(3))
        t_naive = _time(solve_offline_naive, inst)
        rows.append(
            {
                "n": n,
                "auto/frontier [s]": t_fast,
                "reference O(mn) [s]": t_ref,
                "bisect O(nm log n) [s]": t_bis,
                "naive O(n^2) [s]": t_naive,
                "speedup vs naive": t_naive / t_fast,
            }
        )
    emit(
        "offline_scaling_n",
        format_table(rows, precision=4),
        header="C1: scaling in n at m=16 (identical outputs asserted; "
        "default solve_offline = frontier kernel)",
    )
    # The asymptotic gap must widen with n.
    assert rows[-1]["speedup vs naive"] > rows[0]["speedup vs naive"]

    inst = poisson_zipf_instance(1000, 16, rng=0)
    benchmark(solve_offline, inst)


def test_scaling_in_m(benchmark):
    rows = []
    for m in (4, 16, 64, 256):
        inst = poisson_zipf_instance(800, m, rate=1.0, zipf_s=0.8, rng=1)
        fast = solve_offline(inst)  # kernel="auto" -> frontier
        assert fast.agrees_with(solve_offline(inst, kernel="reference"))
        assert fast.agrees_with(solve_offline_bisect(inst))
        t_fast = min(_time(solve_offline, inst) for _ in range(3))
        t_ref = min(
            _time(solve_offline, inst, kernel="reference") for _ in range(3)
        )
        t_bis = min(_time(solve_offline_bisect, inst) for _ in range(3))
        rows.append(
            {
                "m": m,
                "auto/frontier [s]": t_fast,
                "reference O(mn) [s]": t_ref,
                "bisect O(nm log n) [s]": t_bis,
                "ratio": t_bis / t_fast,
            }
        )
    emit(
        "offline_scaling_m",
        format_table(rows, precision=4),
        header="C1: scaling in m at n=800 "
        "(default solve_offline = frontier kernel)",
    )
    # The fast solver must never lose to the log-factor variant at scale.
    assert rows[-1]["ratio"] >= 1.0

    inst = poisson_zipf_instance(800, 64, rate=1.0, zipf_s=0.8, rng=1)
    benchmark(solve_offline, inst)


def test_fast_dp_headline_kernel(benchmark):
    inst = poisson_zipf_instance(5000, 32, rate=1.0, rng=2)
    res = benchmark(solve_offline, inst)
    assert res.optimal_cost > 0
