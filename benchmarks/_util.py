"""Shared helpers for the benchmark suite.

Every benchmark regenerates a paper table/figure (see DESIGN.md §4) and
does two things with it: prints it (visible with ``pytest -s``) and
writes it under ``benchmarks/out/`` so EXPERIMENTS.md can cite stable
artefacts.
"""

from __future__ import annotations

import pathlib
from typing import Optional

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, text: str, header: Optional[str] = None) -> None:
    """Print a report block and persist it to ``benchmarks/out/<name>.txt``."""
    OUT_DIR.mkdir(exist_ok=True)
    block = f"{header}\n{text}" if header else text
    (OUT_DIR / f"{name}.txt").write_text(block + "\n")
    print(f"\n=== {name} ===\n{block}")
