"""Supplementary — tightness of the running bound ``B_n`` (Definition 5).

The DP's correctness argument leans on ``B_i`` as a per-request lower
bound.  This experiment charts how tight ``B_n`` is against ``C(n)``
across workload density: in dense regimes nearly all cost is marginal
(bound tight); in sparse regimes the mandatory always-one-copy rent
dominates and the gap widens.  Also reports the reconstruction cost
identity as a hard check at benchmark scale.
"""

import numpy as np
import pytest

from repro import solve_offline
from repro.analysis import format_table
from repro.offline import bound_report
from repro.workloads import poisson_zipf_instance

from _util import emit


def test_bound_tightness(benchmark):
    rows = []
    for rate in (10.0, 2.0, 0.5, 0.1):
        reports = [
            bound_report(poisson_zipf_instance(150, 6, rate=rate, rng=s))
            for s in range(5)
        ]
        rows.append(
            {
                "rate": rate,
                "mean B_n": float(np.mean([r.lower_bound for r in reports])),
                "mean C(n)": float(np.mean([r.optimal_cost for r in reports])),
                "mean C/B": float(np.mean([r.ratio for r in reports])),
            }
        )
    emit(
        "bounds_tightness",
        format_table(rows, precision=4),
        header="running bound tightness vs request density (m=6, n=150)",
    )

    # Sparse regimes leave a wider gap than dense ones.
    assert rows[0]["mean C/B"] <= rows[-1]["mean C/B"]
    # B_n <= C(n) always.
    for row in rows:
        assert row["mean B_n"] <= row["mean C(n)"] + 1e-9

    inst = poisson_zipf_instance(150, 6, rate=1.0, rng=0)

    def solve_and_reconstruct():
        res = solve_offline(inst)
        return res.schedule()  # asserts cost identity internally

    benchmark(solve_and_reconstruct)
