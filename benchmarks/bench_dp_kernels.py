"""P2 — array-native DP kernels: identity gate + speedup gate.

Standalone script (also runnable under pytest) benchmarking the
``repro.kernels`` fast paths against the reference solvers and writing
``BENCH_dp_kernels.json`` at the repository root:

* **kernel grid** — ``solve_offline(kernel="frontier")`` vs
  ``kernel="reference"`` over an (n, m) grid.  At *every* point the two
  results must be byte-identical in ``C``, ``D``, ``served_by_cache``
  and the backtracking metadata, and the reconstructed schedules must
  have identical transfer counts and costs.  This gate is unconditional:
  any violation exits non-zero, in ``--quick`` mode too.
* **speedup gate** — the headline point (``n=100_000, m=64``) must show
  the frontier kernel ≥3× faster than the reference sweep.  Hard
  failure in full mode; in ``--quick`` mode (CI smoke on shared
  runners) the grid shrinks and the gate only soft-warns, because
  timings on noisy boxes are advisory.
* **batch series** — ``solve_offline_batch`` (one instance-major kernel
  call over a whole Zipf-skewed multi-item workload) vs the per-item
  frontier loop.  Identity across every item and every result field is
  unconditional — quick mode included; the ≥5x batch speedup gate is
  hard in full mode when the compiled C sweep is available and
  soft-warns otherwise (``--quick``, or Python-sweep fallback boxes
  with no C compiler).
* **vectorize crossover** — times the reference kernel's scalar pivot
  loop vs its numpy gather across ``m``; the measured crossover is what
  calibrates ``_VECTORIZE_MIN_M`` in :mod:`repro.offline.dp`.
* **replay fast path** — ``run_online`` array-backed replay vs the
  stepwise ``ReplayDriver`` loop: identical cost/counters (asserted)
  plus the measured speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_dp_kernels.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:  # standalone invocation without install
    sys.path.insert(0, str(ROOT / "src"))

from repro import (  # noqa: E402
    SpeculativeCaching,
    multi_item_workload,
    solve_offline,
    solve_offline_batch,
)
from repro.analysis import format_table  # noqa: E402
from repro.kernels import (  # noqa: E402
    batch_sweep_backend,
    replay_fault_free,
    solve_offline_frontier,
)
from repro.sim.engine import run_online  # noqa: E402
from repro.workloads import poisson_zipf_instance  # noqa: E402

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from _util import emit  # noqa: E402

JSON_PATH = ROOT / "BENCH_dp_kernels.json"

#: Headline grid point of the ISSUE's speedup gate.
HEADLINE = {"n": 100_000, "m": 64}
SPEEDUP_GATE = 3.0

#: Batched-kernel gate: one solve_offline_batch call over the service
#: workload must beat the per-item frontier loop by this factor (hard in
#: full mode with the compiled C sweep; soft otherwise).
BATCH_SPEEDUP_GATE = 5.0


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _identical(a, b) -> bool:
    """Byte-identity across every result field plus schedule agreement."""
    if not (
        a.C.tobytes() == b.C.tobytes()
        and a.D.tobytes() == b.D.tobytes()
        and a.served_by_cache.tobytes() == b.served_by_cache.tobytes()
        and a.choice_d_tag.tobytes() == b.choice_d_tag.tobytes()
        and a.choice_d_k.tobytes() == b.choice_d_k.tobytes()
    ):
        return False
    sa, sb = a.schedule(), b.schedule()
    cost = a.instance.cost
    return (
        len(sa.transfers) == len(sb.transfers)
        and sa.transfers == sb.transfers
        and sa.total_cost(cost) == sb.total_cost(cost)
    )


def run_bench(quick: bool) -> dict:
    repeats = 1 if quick else 3
    if quick:
        grid = [(1_000, 8), (2_000, 64)]
        cross_n, cross_ms = 800, [8, 64]
        replay_n, replay_m = 2_000, 16
    else:
        grid = [(2_000, 8), (10_000, 16), (50_000, 32), (100_000, 64)]
        cross_n, cross_ms = 4_000, [4, 8, 16, 32, 48, 64, 96, 128]
        replay_n, replay_m = 50_000, 32

    failures = []
    kernel_rows = []
    for n, m in grid:
        inst = poisson_zipf_instance(n, m, rate=1.0, zipf_s=0.9, rng=n + m)
        t_ref, res_ref = _best_of(
            lambda: solve_offline(inst, kernel="reference"), repeats
        )
        t_fro, res_fro = _best_of(lambda: solve_offline_frontier(inst), repeats)
        identical = _identical(res_ref, res_fro)
        if not identical:
            failures.append(f"bit-identity violated at n={n}, m={m}")
        kernel_rows.append(
            {
                "n": n,
                "m": m,
                "reference_s": t_ref,
                "frontier_s": t_fro,
                "speedup": t_ref / t_fro if t_fro > 0 else float("inf"),
                "bit_identical": identical,
            }
        )

    # Batched instance-major kernel vs the per-item frontier loop over a
    # multi-item service workload (identity unconditional; speedup gated).
    if quick:
        b_items, b_total, b_m = 24, 24 * 250, 8
    else:
        b_items, b_total, b_m = 96, 96 * 1600, 24
    svc = multi_item_workload(b_items, b_total, b_m, rng=96)
    t_item, res_item = _best_of(
        lambda: {
            name: solve_offline_frontier(inst)
            for name, inst in svc.items.items()
        },
        repeats,
    )
    t_batch, res_batch = _best_of(
        lambda: solve_offline_batch(svc.items), repeats
    )
    batch_identical = all(
        res_batch[k].C.tobytes() == res_item[k].C.tobytes()
        and res_batch[k].D.tobytes() == res_item[k].D.tobytes()
        and res_batch[k].served_by_cache.tobytes()
        == res_item[k].served_by_cache.tobytes()
        and res_batch[k].choice_d_tag.tobytes()
        == res_item[k].choice_d_tag.tobytes()
        and res_batch[k].choice_d_k.tobytes()
        == res_item[k].choice_d_k.tobytes()
        for k in svc.items
    )
    if not batch_identical:
        failures.append(
            f"batch kernel diverged from per-item frontier "
            f"(items={b_items}, n_total={b_total}, m={b_m})"
        )
    batch_row = {
        "items": b_items,
        "n_total": b_total,
        "m": b_m,
        "backend": batch_sweep_backend(),
        "per_item_frontier_s": t_item,
        "batch_s": t_batch,
        "speedup": t_item / t_batch if t_batch > 0 else float("inf"),
        "bit_identical": batch_identical,
    }

    # Reference-kernel vectorization crossover (calibrates _VECTORIZE_MIN_M).
    cross_rows = []
    for m in cross_ms:
        inst = poisson_zipf_instance(cross_n, m, rate=1.0, zipf_s=0.9, rng=m)
        t_scalar, res_s = _best_of(
            lambda: solve_offline(inst, vectorized=False, kernel="reference"),
            repeats,
        )
        t_vec, res_v = _best_of(
            lambda: solve_offline(inst, vectorized=True, kernel="reference"),
            repeats,
        )
        if not _identical(res_s, res_v):
            failures.append(f"vectorized reference diverged at m={m}")
        cross_rows.append(
            {
                "m": m,
                "scalar_s": t_scalar,
                "vectorized_s": t_vec,
                "vectorized_wins": t_vec < t_scalar,
            }
        )
    crossover = next(
        (r["m"] for r in cross_rows if r["vectorized_wins"]), None
    )

    # Replay series: stepwise driver baseline vs each fast path — the
    # array-backed replay (fast=True), the hook-driven replay_fault_free,
    # and the batched online kernel (kernel="vector").  Every row must
    # reproduce the driver's cost/counters/transfers exactly.
    inst = poisson_zipf_instance(replay_n, replay_m, rate=1.0, rng=3)
    t_step, run_step = _best_of(
        lambda: run_online(SpeculativeCaching(), inst, fast=False), repeats
    )
    replay_contenders = [
        ("fast", lambda: run_online(SpeculativeCaching(), inst, kernel="event")),
        ("replay_fault_free", lambda: replay_fault_free(SpeculativeCaching(), inst)),
        ("vector", lambda: run_online(SpeculativeCaching(), inst, kernel="vector")),
    ]
    replay_rows = []
    for label, fn in replay_contenders:
        t_run, run = _best_of(fn, repeats)
        same = (
            run.cost == run_step.cost
            and run.counters == run_step.counters
            and run.schedule.transfers == run_step.schedule.transfers
            and run.schedule.intervals == run_step.schedule.intervals
        )
        if not same:
            failures.append(f"replay path '{label}' diverged from stepwise driver")
        replay_rows.append(
            {
                "n": replay_n,
                "m": replay_m,
                "policy": "sc",
                "path": label,
                "driver_s": t_step,
                "path_s": t_run,
                "speedup": t_step / t_run if t_run > 0 else float("inf"),
                "identical": same,
            }
        )

    headline = next(
        (
            r
            for r in kernel_rows
            if r["n"] == HEADLINE["n"] and r["m"] == HEADLINE["m"]
        ),
        None,
    )
    payload = {
        "benchmark": "dp_kernels",
        "quick": quick,
        "repeats": repeats,
        "identity": "C/D/served_by_cache/choice vectors byte-identical and "
        "reconstructed schedules equal, per grid point",
        "speedup_gate": {
            "at": HEADLINE,
            "threshold": SPEEDUP_GATE,
            "measured": headline["speedup"] if headline else None,
        },
        "batch_gate": {
            "threshold": BATCH_SPEEDUP_GATE,
            "measured": batch_row["speedup"],
            "backend": batch_row["backend"],
        },
        "kernel_grid": kernel_rows,
        "batch_series": [batch_row],
        "vectorize_crossover": {
            "n": cross_n,
            "rows": cross_rows,
            "first_m_where_vectorized_wins": crossover,
        },
        "replay_fast_path": replay_rows,
        "failures": failures,
    }
    return payload


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small grid for CI smoke: identity gate still hard, "
        "speedup gate soft-warns",
    )
    ap.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help=f"output path (default {JSON_PATH}; quick runs don't overwrite "
        "the committed artefact unless asked)",
    )
    args = ap.parse_args(argv)

    payload = run_bench(args.quick)
    out = args.json
    if out is None:
        # A --quick run on a laptop/CI box must not clobber the committed
        # full-grid artefact that README/EXPERIMENTS cite.
        out = JSON_PATH if not args.quick else None
    if out is not None:
        out.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "dp_kernels",
        format_table(payload["kernel_grid"], precision=4)
        + "\n\nbatch kernel (one call vs per-item frontier loop):\n"
        + format_table(payload["batch_series"], precision=4)
        + "\n\nvectorize crossover (reference kernel, n="
        + str(payload["vectorize_crossover"]["n"])
        + "):\n"
        + format_table(payload["vectorize_crossover"]["rows"], precision=4)
        + "\n\nreplay series (stepwise driver vs fast paths):\n"
        + format_table(payload["replay_fast_path"], precision=4),
        header="P2: DP kernel grid — frontier vs reference "
        f"(identity asserted per point; gate ≥{SPEEDUP_GATE}x at "
        f"n={HEADLINE['n']}, m={HEADLINE['m']})",
    )

    if payload["failures"]:
        for msg in payload["failures"]:
            print(f"IDENTITY VIOLATION: {msg}", file=sys.stderr)
        return 1

    gate = payload["speedup_gate"]
    if gate["measured"] is None:
        print(
            f"speedup gate: headline point n={HEADLINE['n']}, "
            f"m={HEADLINE['m']} not in this grid "
            f"({'quick mode' if args.quick else 'unexpected'}); skipped"
        )
    elif gate["measured"] < SPEEDUP_GATE:
        msg = (
            f"speedup gate: measured {gate['measured']:.2f}x < "
            f"{SPEEDUP_GATE}x at n={HEADLINE['n']}, m={HEADLINE['m']}"
        )
        if args.quick:
            print(f"WARNING (soft in --quick): {msg}", file=sys.stderr)
        else:
            print(f"FAILED: {msg}", file=sys.stderr)
            return 1
    else:
        print(
            f"speedup gate passed: {gate['measured']:.2f}x >= "
            f"{SPEEDUP_GATE}x at n={HEADLINE['n']}, m={HEADLINE['m']}"
        )

    bgate = payload["batch_gate"]
    if bgate["measured"] < BATCH_SPEEDUP_GATE:
        msg = (
            f"batch speedup gate: measured {bgate['measured']:.2f}x < "
            f"{BATCH_SPEEDUP_GATE}x (backend={bgate['backend']})"
        )
        # Hard only where it's meaningful: full mode with the compiled
        # sweep.  Quick CI smoke and Python-fallback boxes soft-warn.
        if args.quick or bgate["backend"] != "c":
            print(f"WARNING (soft): {msg}", file=sys.stderr)
        else:
            print(f"FAILED: {msg}", file=sys.stderr)
            return 1
    else:
        print(
            f"batch speedup gate passed: {bgate['measured']:.2f}x >= "
            f"{BATCH_SPEEDUP_GATE}x (backend={bgate['backend']})"
        )
    return 0


def test_dp_kernels_quick():
    """Pytest entry: the quick grid's identity gate must hold."""
    payload = run_bench(quick=True)
    assert payload["failures"] == []


if __name__ == "__main__":
    sys.exit(main())
