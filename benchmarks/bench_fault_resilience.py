"""Fault-resilience sweep — SC-R cost and availability under chaos.

Sweeps crash rate x replica count ``k`` over seeded fault plans and
reports, per cell, the mean total-cost ratio against fault-free SC on
the same instances and the blackout frequency (fraction of scenarios
with at least one zero-copy window).  Expected shape:

* k=1 sees blackouts as soon as crashes land on the lone copy; k>=2
  drives blackout frequency to (near) zero until outages overlap,
* resilience is paid for: the cost ratio grows with both k (replica
  rent) and the crash rate (repairs, re-seeds, penalties),
* with no faults the k=1 row is exactly ratio 1.0 — SC-R degenerates
  to plain SC.
"""

import numpy as np
import pytest

from repro import FaultPlan, SpeculativeCaching, run_online, run_online_faulty
from repro.analysis import format_table
from repro.online import SpeculativeCachingResilient
from repro.workloads import poisson_zipf_instance

from _util import emit

CRASH_RATES = [0.0, 0.5, 1.0, 2.0]
REPLICAS = [1, 2, 3]
SEEDS = range(5)


def instances():
    return [
        poisson_zipf_instance(100, 5, rate=1.0, zipf_s=0.8, rng=s)
        for s in SEEDS
    ]


def test_fault_resilience(benchmark):
    insts = instances()
    base_costs = [run_online(SpeculativeCaching(), i).cost for i in insts]

    rows = []
    cells = {}
    for crash_rate in CRASH_RATES:
        row = {"crash rate": crash_rate}
        for k in REPLICAS:
            ratios, blackout_hits, dropped, reseeds = [], 0, 0, 0
            for seed, (inst, base) in enumerate(zip(insts, base_costs)):
                t0, tn = float(inst.t[0]), float(inst.t[-1])
                if crash_rate == 0.0:
                    plan = FaultPlan()
                else:
                    plan = FaultPlan.generate(
                        seed=seed,
                        num_servers=inst.num_servers,
                        start=t0,
                        end=tn,
                        crash_rate=crash_rate,
                        mean_outage=0.05 * (tn - t0),
                    )
                res = run_online_faulty(
                    SpeculativeCachingResilient(replicas=k, max_retries=3),
                    inst,
                    plan,
                )
                ratios.append(res.total_cost / base)
                blackout_hits += bool(res.blackouts)
                dropped += res.counters["dropped_requests"]
                reseeds += res.counters["reseeds"]
            cell = {
                "ratio": float(np.mean(ratios)),
                "blackout_freq": blackout_hits / len(insts),
                "dropped": dropped,
                "reseeds": reseeds,
            }
            cells[(crash_rate, k)] = cell
            row[f"k={k} ratio"] = cell["ratio"]
            row[f"k={k} blk"] = cell["blackout_freq"]
            row[f"k={k} rsd"] = cell["reseeds"]
        rows.append(row)

    emit(
        "fault_resilience",
        format_table(rows, precision=3),
        header=(
            "Fault resilience: mean total-cost ratio vs fault-free SC, "
            "blackout frequency and origin\nre-seeds, by crash rate "
            "(outages/server/horizon) and replica floor k\n"
            "(5 seeds x 100 reqs x 5 servers)"
        ),
    )

    # Fault-free k=1 is exact parity with plain SC.
    assert cells[(0.0, 1)]["ratio"] == pytest.approx(1.0)
    assert cells[(0.0, 1)]["blackout_freq"] == 0.0
    # Resilience costs replica rent: fault-free cost grows with k.
    assert cells[(0.0, 2)]["ratio"] >= cells[(0.0, 1)]["ratio"]
    # Replication buys availability: at every faulty rate, k=2 suffers
    # no more blackout scenarios and no more origin re-seeds than k=1
    # (a lone copy dies with its server; a spare keeps custody alive).
    for cr in CRASH_RATES[1:]:
        assert (
            cells[(cr, 2)]["blackout_freq"] <= cells[(cr, 1)]["blackout_freq"]
        )
        assert cells[(cr, 2)]["reseeds"] <= cells[(cr, 1)]["reseeds"]

    inst = insts[0]
    plan = FaultPlan.generate(
        seed=0,
        num_servers=inst.num_servers,
        start=float(inst.t[0]),
        end=float(inst.t[-1]),
        crash_rate=1.0,
        mean_outage=0.05 * (float(inst.t[-1]) - float(inst.t[0])),
    )
    benchmark(
        lambda: run_online_faulty(
            SpeculativeCachingResilient(replicas=2), inst, plan
        )
    )
