"""Extension E1 — beyond the homogeneous cost model.

The paper's recurrences require homogeneity.  This experiment uses the
exact subset-state oracle to quantify what that assumption costs when
the real substrate is heterogeneous: it solves instances under a
heterogeneous model (per-server rents spread by a factor ``spread``),
and compares the true heterogeneous optimum against the schedule the
homogeneous DP would pick (evaluated under the heterogeneous model's
mean-rate homogenisation).

The regret series quantifies when the paper's assumption is safe (small
spread) and when a heterogeneity-aware solver pays off (large spread).
"""

import numpy as np
import pytest

from repro import CostModel, ProblemInstance, solve_exact, solve_offline
from repro.analysis import format_table
from repro.network import HeterogeneousCostModel
from repro.workloads import poisson_zipf_instance

from _util import emit


def het_model(m, spread, rng):
    mu = np.exp(rng.uniform(-np.log(spread) / 2, np.log(spread) / 2, size=m))
    lam = np.full((m, m), 1.0)
    np.fill_diagonal(lam, 0.0)
    return HeterogeneousCostModel(mu=mu, lam=lam)


def _eval_schedule_under_het(schedule, het):
    """Re-cost a schedule's atoms under the heterogeneous model."""
    caching = sum(
        float(het.mu[iv.server]) * iv.duration
        for iv in schedule.canonical().intervals
    )
    transfer = sum(
        float(het.lam[tr.src, tr.dst]) for tr in schedule.transfers
    )
    return caching + transfer


def test_heterogeneous_regret(benchmark):
    rows = []
    rng = np.random.default_rng(0)
    m, n = 5, 25
    for spread in (1.0, 2.0, 4.0, 16.0):
        regrets = []
        for seed in range(5):
            het = het_model(m, spread, rng)
            base = poisson_zipf_instance(n, m, rate=1.0, rng=seed)
            # Homogenise: mean rent, unit transfers.
            hom_cost = CostModel(mu=float(het.mu.mean()), lam=1.0)
            inst = ProblemInstance.from_arrays(
                base.t[1:], base.srv[1:], num_servers=m, cost=hom_cost
            )
            true_opt = solve_exact(inst, het=het).optimal_cost
            hom_sched = solve_offline(inst).schedule()
            hom_under_het = _eval_schedule_under_het(hom_sched, het)
            regrets.append(hom_under_het / true_opt)
        rows.append(
            {
                "rent spread": spread,
                "mean regret (hom/het-opt)": float(np.mean(regrets)),
                "worst regret": float(np.max(regrets)),
            }
        )
    emit(
        "heterogeneous_ext",
        format_table(rows, precision=4),
        header="E1: regret of assuming homogeneity (m=5, n=25, exact oracle)",
    )

    # Homogeneous substrate: zero regret by construction.
    assert rows[0]["mean regret (hom/het-opt)"] == pytest.approx(1.0, abs=1e-9)
    # Heterogeneity must cost something as the spread grows.
    assert rows[-1]["mean regret (hom/het-opt)"] >= rows[0]["mean regret (hom/het-opt)"]

    het = het_model(m, 4.0, rng)
    inst = poisson_zipf_instance(n, m, rate=1.0, rng=0)
    benchmark(lambda: solve_exact(inst, het=het, build_schedule=False))


def test_beam_extends_beyond_exact_cap(benchmark):
    """Large heterogeneous fleets via beam search (exact is capped at 16).

    Small fleets: assert the beam matches the oracle.  Large fleet
    (m=32): report the beam's heterogeneity-aware saving over executing
    the homogenised DP schedule under the true costs.
    """
    from repro.offline import solve_beam

    rng = np.random.default_rng(7)
    # Calibration: beam == exact where exact is feasible.
    for seed in range(4):
        inst = poisson_zipf_instance(20, 4, rate=1.0, rng=seed)
        het = het_model(4, 4.0, rng)
        exact = solve_exact(inst, het=het, build_schedule=False).optimal_cost
        assert solve_beam(inst, het=het, width=128).cost == pytest.approx(
            exact, rel=1e-9
        )

    # Scale-out: m = 32 heterogeneous.
    m = 32
    het = het_model(m, 8.0, rng)
    base = poisson_zipf_instance(150, m, rate=1.0, rng=9)
    hom_cost = CostModel(mu=float(het.mu.mean()), lam=1.0)
    inst = ProblemInstance.from_arrays(
        base.t[1:], base.srv[1:], num_servers=m, cost=hom_cost
    )
    beam = solve_beam(inst, het=het, width=32)
    hom_under_het = _eval_schedule_under_het(
        solve_offline(inst).schedule(), het
    )
    saving = 1.0 - beam.cost / hom_under_het
    rows = [
        {
            "m": m,
            "beam cost": beam.cost,
            "homogenised-DP under het": hom_under_het,
            "beam saving": saving,
        }
    ]
    emit(
        "heterogeneous_beam",
        format_table(rows, precision=4),
        header="E1b: heterogeneity-aware beam search at m=32 (rent spread 8x)",
    )
    assert beam.cost <= hom_under_het + 1e-9

    benchmark(lambda: solve_beam(inst, het=het, width=16, build_schedule=False))
