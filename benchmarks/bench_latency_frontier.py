"""Extension E4 — the cost-latency frontier.

The paper's introduction motivates caching with access latency and then
optimises money alone.  This experiment prices both axes via the latency
emulator: each policy's (cost, p95 latency, hit ratio) on one bursty
workload, plus the Pareto front.  Expected shape: NeverDelete buys
latency with money, AlwaysTransfer is cheap and slow, the off-line
optimum anchors the cheap end, and SC sits between — with the *optimal*
schedule already achieving a respectable hit ratio for free (trajectory
locality does the work).
"""

import pytest

from repro import solve_offline
from repro.analysis import format_table
from repro.emulator import LatencyModel, cost_latency_frontier, emulate, pareto_front
from repro.online import (
    AlwaysTransfer,
    NeverDelete,
    RandomizedTTL,
    SpeculativeCaching,
)
from repro.workloads import mmpp_instance

from _util import emit


def test_cost_latency_frontier(benchmark):
    inst = mmpp_instance(
        300, 6, rate_low=0.3, rate_high=6.0, zipf_s=0.9, popularity="zipf", rng=11
    )
    latency = LatencyModel(hit=2.0, fetch_base=25.0)
    policies = [
        ("SC", lambda: SpeculativeCaching()),
        ("SC 2x window", lambda: SpeculativeCaching(window_factor=2.0)),
        ("always-transfer", lambda: AlwaysTransfer()),
        ("never-delete", lambda: NeverDelete()),
        ("randomized-ttl", lambda: RandomizedTTL(seed=0)),
    ]
    points = cost_latency_frontier(inst, policies, latency=latency)
    front = {p.policy for p in pareto_front(points)}
    rows = [
        {
            "policy": p.policy,
            "cost": p.cost,
            "p95 latency": p.p95_latency,
            "hit ratio": p.hit_ratio,
            "pareto": p.policy in front,
        }
        for p in sorted(points, key=lambda p: p.cost)
    ]
    emit(
        "latency_frontier",
        format_table(rows, precision=4),
        header="E4: cost-latency frontier (MMPP n=300, hit 2ms / fetch 25ms)",
    )

    by = {p.policy: p for p in points}
    # The optimum is the cheapest point.
    assert all(by["off-line optimal"].cost <= p.cost + 1e-9 for p in points)
    # Money buys latency: never-delete has the best hit ratio and a
    # worse bill than SC.
    assert by["never-delete"].hit_ratio >= by["SC"].hit_ratio
    assert by["never-delete"].cost >= by["SC"].cost
    # A wider window trades money for hits within the SC family.
    assert by["SC 2x window"].hit_ratio >= by["SC"].hit_ratio - 1e-9
    # The off-line optimum is always on the Pareto front.
    assert "off-line optimal" in front

    sched = solve_offline(inst).schedule()
    benchmark(lambda: emulate(sched, inst, latency=latency))
