"""Experiment Fig 2 — standard-form optimal schedule decomposition.

The paper's Fig. 2 caption: caching cost ``1.4μ + 0.2μ + 1.6μ = 3.2``
and transfer cost ``4λ = 4.0`` at ``μ = λ = 1``.  We regenerate an
optimal schedule with exactly that decomposition, verify standard form
(every transfer ends on a request) and the tree property (Observation 2).
"""

import pytest

from repro import solve_exact, solve_offline, validate_schedule
from repro.paperdata import FIG2_EXPECTED, fig2_instance
from repro.schedule import is_standard_form, render_schedule, schedule_is_tree

from _util import emit


def test_fig2_decomposition(benchmark):
    inst = fig2_instance()
    res = benchmark(solve_offline, inst)
    sched = res.schedule()

    caching = sched.caching_cost(inst.cost)
    transfer = sched.transfer_cost(inst.cost)
    emit(
        "fig2_standard_form",
        "\n".join(
            [
                render_schedule(sched, inst, title="standard-form optimum"),
                f"caching  = {caching:.4g}   (paper: 3.2)",
                f"transfer = {transfer:.4g}   (paper: 4.0)",
                f"total    = {res.optimal_cost:.4g}   (paper: 7.2)",
                f"standard form: {is_standard_form(sched, inst)}",
                f"rooted tree  : {schedule_is_tree(sched, inst)}",
            ]
        ),
        header="Fig 2 standard-form example (m=3, mu=lam=1)",
    )

    validate_schedule(sched, inst, require_standard_form=True)
    assert caching == pytest.approx(FIG2_EXPECTED["caching_cost"])
    assert transfer == pytest.approx(FIG2_EXPECTED["transfer_cost"])
    assert res.optimal_cost == pytest.approx(FIG2_EXPECTED["optimal_cost"])
    assert solve_exact(inst).optimal_cost == pytest.approx(7.2)
    assert schedule_is_tree(sched, inst)
