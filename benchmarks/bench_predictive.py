"""Extension E2 — prediction-augmented caching (the trajectory premise).

The paper argues off-line algorithms are realistic because trajectories
are predictable.  This experiment quantifies the whole spectrum between
SC (no information) and the off-line optimum (full information):

* SC — 0 bits of future;
* ``PredictiveCaching(MarkovPredictor)`` — honest, learned recurrence;
* ``PredictiveCaching(OracleNextRequest(horizon=k))`` — k-lookahead;
* ``PredictiveCaching(OracleNextRequest())`` — perfect next-use oracle;
* OPT — the full off-line DP.

Expected shape: ratios fall monotonically along that spectrum, with most
of the gap closed by a few requests of lookahead — the quantitative
version of "93% predictable behaviour makes off-line caching real".
"""

import numpy as np
import pytest

from repro import CostModel, solve_offline
from repro.analysis import format_table
from repro.network import Cluster
from repro.online import (
    MarkovPredictor,
    OracleNextRequest,
    PredictiveCaching,
    RecedingHorizonPlanner,
    SpeculativeCaching,
)
from repro.workloads import MarkovMobility, poisson_zipf_instance

from _util import emit


def panels():
    cluster = Cluster.grid(2, 3, cost=CostModel())
    mob = MarkovMobility(cluster, locality=0.9, request_rate=1.5)
    return {
        "poisson-zipf": [
            poisson_zipf_instance(120, 5, rate=1.0, rng=s) for s in range(8)
        ],
        "markov-trajectory": [
            mob.instance(2, 50.0, rng=s) for s in range(8)
        ],
    }


def ladder():
    return [
        ("SC (no future)", lambda: SpeculativeCaching()),
        ("markov-predicted", lambda: PredictiveCaching(MarkovPredictor())),
        ("lookahead k=1", lambda: PredictiveCaching(OracleNextRequest(horizon=1))),
        ("lookahead k=5", lambda: PredictiveCaching(OracleNextRequest(horizon=5))),
        ("oracle next-use", lambda: PredictiveCaching(OracleNextRequest())),
        ("MPC k=1", lambda: RecedingHorizonPlanner(horizon=1)),
        ("MPC k=5", lambda: RecedingHorizonPlanner(horizon=5)),
    ]


def test_information_ladder(benchmark):
    rows = []
    means = {}
    for panel_name, insts in panels().items():
        opts = [solve_offline(i).optimal_cost for i in insts]
        row = {"workload": panel_name}
        for algo_name, factory in ladder():
            ratios = [
                factory().run(inst).cost / opt for inst, opt in zip(insts, opts)
            ]
            row[algo_name] = float(np.mean(ratios))
            means[(panel_name, algo_name)] = row[algo_name]
        row["OPT"] = 1.0
        rows.append(row)
    emit(
        "predictive_ladder",
        format_table(rows, precision=4),
        header="E2: mean cost ratio vs OPT along the information ladder",
    )

    for panel_name in panels():
        sc = means[(panel_name, "SC (no future)")]
        k5 = means[(panel_name, "lookahead k=5")]
        oracle = means[(panel_name, "oracle next-use")]
        mpc5 = means[(panel_name, "MPC k=5")]
        # Perfect next-use prediction recovers most of SC's gap...
        assert oracle < sc
        assert oracle - 1.0 < 0.5 * (sc - 1.0)
        # ...a few requests of lookahead are nearly as good...
        assert k5 <= oracle + 0.1
        # ...and planning (proactive placement) beats evicting on the
        # same information.
        assert mpc5 <= k5 + 1e-9

    inst = panels()["poisson-zipf"][0]
    benchmark(lambda: PredictiveCaching(OracleNextRequest(horizon=5)).run(inst))
