"""Experiment Table I — classic network caching vs cloud data caching.

The paper's Table I is a qualitative contrast; this benchmark regenerates
it quantitatively on one shared workload: a Zipf-popular, trajectory-like
request stream.

* **Classic side** (capacity k, hit-ratio objective): Belady's MIN as the
  off-line optimum, LRU as the k-competitive online policy — run over the
  same stream interpreted as page references (page = serving server id,
  mirroring a per-location content cache).
* **Cloud side** (no capacity, monetary objective): our O(mn) optimal
  off-line DP and the 3-competitive online SC.

The regenerated table shows the paper's point: the two regimes optimise
different objectives with different optimal/online tool pairs, and the
cloud side's online gap is a small constant rather than capacity-bound.
"""

import pytest

from repro import solve_offline
from repro.analysis import format_table
from repro.classic import LRU, BeladyMIN, simulate_paging
from repro.online import SpeculativeCaching
from repro.workloads import poisson_zipf_instance

from _util import emit


def make_workload():
    return poisson_zipf_instance(400, 8, rate=1.5, zipf_s=1.1, rng=42)


def test_table1_contrast(benchmark):
    inst = make_workload()
    res = benchmark(solve_offline, inst)

    pages = inst.srv[1:].tolist()
    capacity = 3
    belady = simulate_paging(pages, capacity, BeladyMIN())
    lru = simulate_paging(pages, capacity, LRU())
    sc = SpeculativeCaching().run(inst)

    rows = [
        {
            "": "optimisation goal",
            "classic caching": "max hit ratio (capacity k)",
            "cloud data caching": "min total service cost",
        },
        {
            "": "off-line optimum",
            "classic caching": f"Belady MIN: hit ratio {belady.hit_ratio:.3f}",
            "cloud data caching": f"O(mn) DP: cost {res.optimal_cost:.4g}",
        },
        {
            "": "online algorithm",
            "classic caching": f"LRU: hit ratio {lru.hit_ratio:.3f}",
            "cloud data caching": f"SC: cost {sc.cost:.4g}",
        },
        {
            "": "online vs optimum",
            "classic caching": (
                f"{belady.hit_ratio - lru.hit_ratio:+.3f} hit ratio "
                f"(k-competitive, k={capacity})"
            ),
            "cloud data caching": (
                f"ratio {sc.cost / res.optimal_cost:.3f} (3-competitive)"
            ),
        },
        {
            "": "cache size",
            "classic caching": f"fixed k = {capacity}",
            "cloud data caching": "dynamic (pay per copy-time)",
        },
    ]
    emit(
        "table1_contrast",
        format_table(rows, headers=["", "classic caching", "cloud data caching"]),
        header="Table I regenerated on a shared Zipf workload (n=400, m=8)",
    )

    assert belady.hit_ratio >= lru.hit_ratio - 1e-12  # Belady optimal
    assert sc.cost <= 3 * res.optimal_cost + 1e-6  # Theorem 3
    assert res.optimal_cost >= inst.running_bound() - 1e-9
