"""P6 — live front-end latency, overload shedding, and resume identity.

Measures the resilient serving layer end to end — server subprocess via
``repro.cli serve``, driven by the trace-replaying load generator — and
writes ``BENCH_server_latency.json`` (at the repository root) plus a
human-readable table under ``benchmarks/out/``:

1. **Capacity** — closed-loop replay (back-to-back, retry-until-
   accepted) to find the sustained accept rate on this host.
2. **Latency vs offered rate** — open-loop runs at fractions of the
   measured capacity; p50/p99 measured from the *scheduled* send time
   (no coordinated omission), per-point fresh server + journal.
3. **Overload** — open-loop at 2× capacity against a small bounded
   queue: the server must shed with 429s rather than queue without
   bound, and its RSS (``/proc/<pid>/status``) must stay bounded.
4. **Kill/resume identity** — :func:`server_kill_resume_suite` SIGKILLs
   a journaling server at ≥5 distinct load points and proves the
   resumed decision stream bit-identical to an uninterrupted run.

Gate policy (mirrors the repo's other benchmarks):

* **identity + safety gates are hard everywhere** — every kill/resume
  scenario must match the reference digest, overload RSS growth must
  stay bounded, and the load generator must never give up an event.
* **latency/shed gates are hard only on real hardware**
  (``usable_cpus >= 4``) — on a 1-cpu CI box the numbers are recorded
  honestly in the JSON but not asserted.

``SERVER_BENCH_SMOKE=1`` shrinks everything to seconds for CI smoke
jobs.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

from repro.analysis import format_table
from repro.faults.chaos import server_kill_resume_suite
from repro.service.loadgen import replay, synthetic_events

from _util import emit

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_server_latency.json"

SMOKE = os.environ.get("SERVER_BENCH_SMOKE") == "1"
M = 8
SHARDS = 2
if SMOKE:
    ITEMS = 6
    CAPACITY_EVENTS = 240
    RATE_FRACTIONS = [0.5]
    OVERLOAD_EVENTS = 300
    CHAOS_EVENTS = 40
    KILL_POINTS = 5  # the >=5-point identity proof runs even in smoke
else:
    ITEMS = 12
    CAPACITY_EVENTS = 2000
    RATE_FRACTIONS = [0.25, 0.5, 0.75]
    OVERLOAD_EVENTS = 3000
    CHAOS_EVENTS = 120
    KILL_POINTS = 5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _rss_kb(pid: int) -> int:
    """VmRSS of ``pid`` in KiB, from /proc (no psutil dependency)."""
    with open(f"/proc/{pid}/status", "r", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError(f"no VmRSS line for pid {pid}")


def _spawn_server(journal_dir: pathlib.Path, *extra: str, deadline_s=30.0):
    """Start ``repro.cli serve`` and block until its socket is bound."""
    meta = journal_dir / "server.json"
    meta.unlink(missing_ok=True)
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--journal-dir", str(journal_dir),
        "--shards", str(SHARDS), "-m", str(M), *extra,
    ]
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    proc = subprocess.Popen(
        argv, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env
    )
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server died at startup (rc {proc.returncode})")
        if meta.exists():
            try:
                info = json.loads(meta.read_text())
            except json.JSONDecodeError:
                continue  # mid-write
            return proc, info["host"], info["port"]
        time.sleep(0.02)
    proc.kill()
    raise RuntimeError("server did not bind before the deadline")


def _drain(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=30)
    assert rc == 0, f"server drain exited {rc}"


def _bench_capacity(tmp: pathlib.Path) -> dict:
    """Section 1: sustained closed-loop accept rate."""
    events = synthetic_events(ITEMS, CAPACITY_EVENTS, M, seed=101)
    proc, host, port = _spawn_server(tmp / "capacity", "--no-sync")
    try:
        result = replay(host, port, events, concurrency=8)
    finally:
        _drain(proc)
    report = result.to_dict()
    assert report["give_ups"] == 0, "closed-loop run gave up events"
    return {"events": len(events), **report}


def _bench_latency_vs_rate(tmp: pathlib.Path, capacity_rps: float) -> list:
    """Section 2: open-loop latency at fractions of measured capacity."""
    points = []
    for idx, fraction in enumerate(RATE_FRACTIONS):
        rate = max(10.0, capacity_rps * fraction)
        events = synthetic_events(ITEMS, CAPACITY_EVENTS, M, seed=200 + idx)
        proc, host, port = _spawn_server(tmp / f"rate{idx}", "--no-sync")
        try:
            result = replay(host, port, events, rate=rate, concurrency=8)
        finally:
            _drain(proc)
        report = result.to_dict()
        points.append(
            {
                "fraction_of_capacity": fraction,
                "offered_rps": rate,
                "events": len(events),
                **report,
            }
        )
    return points


def _bench_overload(tmp: pathlib.Path, capacity_rps: float) -> dict:
    """Section 3: 2x-capacity open-loop against a small bounded queue."""
    rate = max(50.0, capacity_rps * 2.0)
    events = synthetic_events(ITEMS, OVERLOAD_EVENTS, M, seed=300)
    proc, host, port = _spawn_server(
        tmp / "overload", "--no-sync", "--queue-depth", "32",
        "--deadline-ms", "250",
    )
    try:
        # Warm-up touch so the measured RSS delta is overload-only.
        replay(host, port, events[:4], fetch_stats=False)
        rss_before = _rss_kb(proc.pid)
        result = replay(host, port, events[4:], rate=rate, concurrency=8)
        rss_after = _rss_kb(proc.pid)
    finally:
        _drain(proc)
    report = result.to_dict()
    return {
        "offered_rps": rate,
        "events": len(events) - 4,
        "queue_depth": 32,
        "rss_before_kb": rss_before,
        "rss_after_kb": rss_after,
        "rss_growth_kb": rss_after - rss_before,
        **report,
    }


def _bench_kill_resume(tmp: pathlib.Path) -> list:
    """Section 4: >=5-point SIGKILL/resume bit-identity proof."""
    events = synthetic_events(ITEMS // 2, CHAOS_EVENTS, M, seed=400)
    outcomes = server_kill_resume_suite(
        events,
        kill_points=KILL_POINTS,
        base_seed=0,
        shards=SHARDS,
        num_servers=M,
        work_dir=tmp / "chaos",
    )
    rows = [o.row() for o in outcomes]
    # Identity gate: hard on every machine, every scenario.
    bad = [o for o in outcomes if not o.ok]
    assert not bad, f"kill/resume identity violations: {[o.row() for o in bad]}"
    assert len(outcomes) >= 5, "fewer than 5 kill points exercised"
    return rows


def test_server_latency(benchmark, tmp_path):
    cpus = _usable_cpus()
    capacity = _bench_capacity(tmp_path)
    capacity_rps = capacity["achieved_rps"]
    latency_points = _bench_latency_vs_rate(tmp_path, capacity_rps)
    overload = _bench_overload(tmp_path, capacity_rps)
    chaos_rows = _bench_kill_resume(tmp_path)

    # Safety gate, hard everywhere: a 2x overload against a 32-deep
    # queue must not balloon the server's memory — admission control
    # bounds the backlog, so RSS growth stays small and flat.
    assert overload["rss_growth_kb"] < 200_000, (
        f"server RSS grew {overload['rss_growth_kb']} KiB under overload"
    )

    # Latency/shed gates: hard only where the hardware can keep up.
    gates_hard = cpus >= 4
    if gates_hard:
        assert overload["shed_rate"] > 0.0, (
            "2x overload shed nothing: admission control not engaging"
        )
        assert overload["p99_ms"] < 5000.0, (
            f"admitted p99 {overload['p99_ms']:.0f} ms under overload"
        )
        assert capacity_rps >= 100.0, (
            f"sustained accept rate only {capacity_rps:.0f} req/s"
        )

    payload = {
        "benchmark": "server_latency",
        "smoke": SMOKE,
        "usable_cpus": cpus,
        "config": {
            "items": ITEMS,
            "m": M,
            "shards": SHARDS,
            "capacity_events": CAPACITY_EVENTS,
            "overload_events": OVERLOAD_EVENTS,
            "chaos_events": CHAOS_EVENTS,
            "kill_points": KILL_POINTS,
        },
        "gates": {
            "identity_hard": True,
            "rss_bound_hard": True,
            "latency_shed_hard": gates_hard,
            "latency_shed_note": "asserted when usable_cpus >= 4; always "
            "recorded",
        },
        "capacity": capacity,
        "latency_vs_rate": latency_points,
        "overload_2x": overload,
        "kill_resume": chaos_rows,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    table_rows = [
        {
            "section": "capacity (closed)",
            "offered_rps": "-",
            "achieved_rps": f"{capacity['achieved_rps']:.0f}",
            "p50_ms": f"{capacity['p50_ms']:.1f}",
            "p99_ms": f"{capacity['p99_ms']:.1f}",
            "shed_rate": f"{capacity['shed_rate']:.3f}",
        }
    ]
    for point in latency_points:
        table_rows.append(
            {
                "section": f"open {point['fraction_of_capacity']:.2f}x",
                "offered_rps": f"{point['offered_rps']:.0f}",
                "achieved_rps": f"{point['achieved_rps']:.0f}",
                "p50_ms": f"{point['p50_ms']:.1f}",
                "p99_ms": f"{point['p99_ms']:.1f}",
                "shed_rate": f"{point['shed_rate']:.3f}",
            }
        )
    table_rows.append(
        {
            "section": "open 2.00x (q=32)",
            "offered_rps": f"{overload['offered_rps']:.0f}",
            "achieved_rps": f"{overload['achieved_rps']:.0f}",
            "p50_ms": f"{overload['p50_ms']:.1f}",
            "p99_ms": f"{overload['p99_ms']:.1f}",
            "shed_rate": f"{overload['shed_rate']:.3f}",
        }
    )
    emit(
        "server_latency",
        format_table(table_rows)
        + f"\n\noverload RSS: {overload['rss_before_kb']} -> "
        f"{overload['rss_after_kb']} KiB "
        f"(+{overload['rss_growth_kb']} KiB, gate <200000 KiB)"
        + f"\nkill/resume: {len(chaos_rows)} SIGKILL points, all digests "
        "match the uninterrupted reference",
        header=f"P6: live server latency + resilience "
        f"(m={M}, {SHARDS} shards, {cpus} usable cpu(s), smoke={SMOKE})",
    )

    benchmark(lambda: synthetic_events(ITEMS, 200, M, seed=1) and None)
