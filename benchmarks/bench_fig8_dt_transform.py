"""Experiments Figs 8+9+10 — DT transformation, reductions, Theorem 3.

Regenerates the analysis pipeline of Section V on the Fig. 7 epoch and
on random workloads: ``Π(DT) = Π(SC)`` (Definition 10), transfer weights
``≤ 2λ``, Lemma 5/6 structure checks, the V-/H-reduced costs, and the
Theorem-3 chain ``Π(DT') ≤ 3n'λ`` / ``Π(OPT') ≥ n'λ``.
"""

import pytest

from repro import double_transfer
from repro.analysis import format_table
from repro.online import SpeculativeCaching, verify_theorem3
from repro.paperdata import fig7_instance
from repro.workloads import poisson_zipf_instance

from _util import emit


def test_dt_transform_and_reductions(benchmark):
    inst = fig7_instance()
    run = SpeculativeCaching().run(inst)
    dt = benchmark(double_transfer, run, inst)

    rows = []
    rep = verify_theorem3(inst)
    rows.append(_report_row("fig7-epoch", rep))
    for seed in range(6):
        w = poisson_zipf_instance(60, 5, rate=1.2, zipf_s=1.0, rng=seed)
        rows.append(_report_row(f"poisson-zipf[{seed}]", verify_theorem3(w)))

    table = format_table(
        rows,
        headers=[
            "instance",
            "Π(SC)",
            "Π(OPT)",
            "ratio",
            "Π(DT')",
            "3n'λ",
            "Π(OPT')",
            "n'λ",
            "chain holds",
        ],
        precision=5,
    )
    emit(
        "fig8_dt_transform",
        f"Π(DT) = {dt.total_cost:.6g} == Π(SC) = {run.cost:.6g}\n\n{table}",
        header="Figs 8-10: DT transform, reductions, Theorem 3 chain",
    )

    assert dt.total_cost == pytest.approx(run.cost)
    lam = inst.cost.lam
    assert all(tr.weight <= 2 * lam + 1e-9 for tr in dt.schedule.transfers)
    assert all(r["chain holds"] for r in rows)


def _report_row(name, rep):
    return {
        "instance": name,
        "Π(SC)": rep.sc_cost,
        "Π(OPT)": rep.opt_cost,
        "ratio": rep.ratio,
        "Π(DT')": rep.dt_reduced,
        "3n'λ": rep.lemma7_bound,
        "Π(OPT')": rep.opt_reduced,
        "n'λ": rep.lemma8_bound,
        "chain holds": rep.holds(),
    }
