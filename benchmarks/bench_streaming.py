"""Supplementary — streaming DP throughput and regret tracking.

Benchmarks the incremental solver's per-append cost and demonstrates the
online-regret use case: maintaining ``Π(SC so far) / C(prefix)`` live,
which a production service could expose as a gauge.
"""

import numpy as np
import pytest

from repro import SpeculativeCaching, StreamingSolver, solve_offline
from repro.analysis import format_series
from repro.workloads import poisson_zipf_instance

from _util import emit


def test_streaming_matches_batch_and_tracks_regret(benchmark):
    inst = poisson_zipf_instance(400, 6, rate=1.0, rng=0)
    batch = solve_offline(inst)

    run = SpeculativeCaching().run(inst)
    # Online cumulative cost per prefix: replay transfers/holds by time.
    checkpoints = [50, 100, 200, 400]
    ratios = []
    for k in checkpoints:
        ss = StreamingSolver(
            inst.num_servers, cost=inst.cost, origin=inst.origin
        )
        ss.extend(
            zip(inst.t[1 : k + 1].tolist(), inst.srv[1 : k + 1].tolist())
        )
        assert ss.optimal_cost == pytest.approx(float(batch.C[k]))
        t_k = float(inst.t[k])
        sc_so_far = sum(
            min(iv.end, t_k) - iv.start
            for iv in run.schedule.canonical().intervals
            if iv.start < t_k
        ) * inst.cost.mu + inst.cost.lam * sum(
            1 for tr in run.schedule.transfers if tr.time <= t_k
        )
        ratios.append(sc_so_far / ss.optimal_cost)
    emit(
        "streaming_regret",
        format_series(
            checkpoints, ratios, x_label="requests", y_label="SC/OPT so far"
        ),
        header="live regret gauge via the streaming DP (n=400, m=6)",
    )
    assert all(r <= 3.0 + 1e-6 for r in ratios)

    def append_throughput():
        ss = StreamingSolver(inst.num_servers, cost=inst.cost, origin=inst.origin)
        ss.extend(zip(inst.t[1:].tolist(), inst.srv[1:].tolist()))
        return ss.optimal_cost

    cost = benchmark(append_throughput)
    assert cost == pytest.approx(batch.optimal_cost)
