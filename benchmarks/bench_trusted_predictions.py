"""Extension E5 — caching with untrusted predictions.

Sweeps the trust parameter β against predictor corruption (verdict-flip
probability) and regenerates the signature robustness-consistency cross
of the algorithms-with-predictions literature, instantiated on the
paper's problem:

* clean advice: smaller β → lower ratio (consistency);
* adversarial advice: smaller β → higher ratio, while β = 1 is immune
  (it *is* SC, whose Theorem-3 bound is advice-independent);
* the crossover sits at moderate corruption.
"""

import numpy as np
import pytest

from repro import solve_offline
from repro.analysis import format_table
from repro.online import NoisyOracle, SpeculativeCaching, TrustedPredictionCaching
from repro.workloads import poisson_zipf_instance

from _util import emit

BETAS = (1.0, 0.5, 0.25)
FLIPS = (0.0, 0.2, 0.5, 1.0)


def test_robustness_consistency_cross(benchmark):
    insts = [poisson_zipf_instance(100, 5, rate=1.0, rng=s) for s in range(8)]
    opts = [solve_offline(i).optimal_cost for i in insts]

    table = {}
    rows = []
    for flip in FLIPS:
        row = {"flip prob": flip}
        for beta in BETAS:
            ratios = [
                TrustedPredictionCaching(
                    NoisyOracle(flip_prob=flip, seed=3), beta=beta
                )
                .run(inst)
                .cost
                / opt
                for inst, opt in zip(insts, opts)
            ]
            row[f"beta={beta:g}"] = float(np.mean(ratios))
            table[(flip, beta)] = row[f"beta={beta:g}"]
        rows.append(row)
    sc = float(
        np.mean(
            [SpeculativeCaching().run(i).cost / o for i, o in zip(insts, opts)]
        )
    )
    emit(
        "trusted_predictions",
        format_table(rows, precision=4)
        + f"\n(plain SC reference: {sc:.4f}; beta=1 equals SC by construction)",
        header="E5: robustness-consistency cross (mean ratio vs OPT)",
    )

    # Consistency: with clean advice, more trust is better.
    assert table[(0.0, 0.25)] < table[(0.0, 0.5)] < table[(0.0, 1.0)] + 1e-9
    # Robustness: with adversarial advice, more trust is worse.
    assert table[(1.0, 0.25)] > table[(1.0, 0.5)] > table[(1.0, 1.0)] - 1e-9
    # beta = 1 is advice-independent (equals SC).
    for flip in FLIPS:
        assert table[(flip, 1.0)] == pytest.approx(sc, rel=1e-9)

    inst = insts[0]
    benchmark(
        lambda: TrustedPredictionCaching(NoisyOracle(seed=3), beta=0.5).run(inst)
    )
