"""Extension E3 — the multi-item service layer.

Scales the per-item machinery to a hosted data service: Zipf-over-items
volumes, per-item optimal DP (exact by decomposition under the
homogeneous model), and service-level online SC.  Reports cost breakdown
concentration and verifies the service-level competitive bound that the
per-item Theorem 3 implies.
"""

import numpy as np
import pytest

from repro import (
    MultiItemOnlineService,
    SpeculativeCaching,
    multi_item_workload,
    solve_offline_multi,
)
from repro.analysis import format_table

from _util import emit


def test_multi_item_service(benchmark):
    rows = []
    for num_items, skew in ((4, 0.5), (8, 1.0), (16, 1.5)):
        svc = multi_item_workload(
            num_items, 600, 8, item_zipf=skew, rate=1.0, rng=num_items
        )
        off = solve_offline_multi(svc)
        online = MultiItemOnlineService(lambda: SpeculativeCaching()).run(svc)
        breakdown = list(off.cost_breakdown().values())
        top_share = breakdown[0] / off.total_cost
        rows.append(
            {
                "items": num_items,
                "item zipf": skew,
                "requests": svc.total_requests,
                "opt cost": off.total_cost,
                "SC cost": online.total_cost,
                "SC/OPT": online.total_cost / off.total_cost,
                "top-item share": top_share,
            }
        )
        # Service-level bound follows from per-item Theorem 3.
        assert online.total_cost <= 3.0 * off.total_cost + 1e-6
        assert off.total_lower_bound <= off.total_cost + 1e-9
    emit(
        "multi_item_service",
        format_table(rows, precision=4),
        header="E3: multi-item service (m=8, ~600 requests)",
    )

    # Stronger item skew concentrates the bill on the head item.
    assert rows[-1]["top-item share"] > rows[0]["top-item share"]

    svc = multi_item_workload(8, 600, 8, rng=8)
    benchmark(lambda: solve_offline_multi(svc).total_cost)
