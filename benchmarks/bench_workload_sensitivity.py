"""Ablation A4 — workload sensitivity of optimal and online costs.

Three sweeps over the workload generators' knobs, each reporting the
optimal cost per request, the SC/OPT ratio, and the bound tightness
``C(n)/B_n``:

* Zipf skew ``s`` (server popularity concentration),
* Markov-mobility locality (trajectory predictability — ties the
  experiment to the paper's Song-et-al. premise via ``Π_max``),
* burstiness (MMPP high/low rate split).
"""

import numpy as np
import pytest

from repro import CostModel, solve_offline
from repro.analysis import format_table
from repro.network import Cluster
from repro.online import SpeculativeCaching
from repro.workloads import (
    MarkovMobility,
    diurnal_instance,
    lz_entropy_rate,
    max_predictability,
    mmpp_instance,
    poisson_zipf_instance,
)

from _util import emit


def _measure(insts):
    per_req, ratios, tightness = [], [], []
    for inst in insts:
        res = solve_offline(inst)
        run = SpeculativeCaching().run(inst)
        per_req.append(res.optimal_cost / inst.n)
        ratios.append(run.cost / res.optimal_cost)
        lb = inst.running_bound()
        tightness.append(res.optimal_cost / lb if lb else np.inf)
    return (
        float(np.mean(per_req)),
        float(np.mean(ratios)),
        float(np.mean(tightness)),
    )


def test_zipf_skew_sweep(benchmark):
    rows = []
    for s in (0.0, 0.5, 1.0, 1.5, 2.5):
        insts = [
            poisson_zipf_instance(120, 8, rate=1.0, zipf_s=s, rng=k)
            for k in range(5)
        ]
        opt_pr, ratio, tight = _measure(insts)
        rows.append(
            {
                "zipf s": s,
                "opt cost/request": opt_pr,
                "SC/OPT": ratio,
                "C(n)/B_n": tight,
            }
        )
    emit(
        "workload_zipf_sweep",
        format_table(rows, precision=4),
        header="A4: Zipf skew sweep (m=8, rate 1.0)",
    )
    # Stronger skew concentrates requests -> cheaper optimal service.
    assert rows[-1]["opt cost/request"] < rows[0]["opt cost/request"]

    inst = poisson_zipf_instance(120, 8, rng=0)
    benchmark(solve_offline, inst)


def test_mobility_locality_sweep(benchmark):
    cluster = Cluster.grid(2, 3, cost=CostModel())
    rows = []
    for locality in (0.2, 0.6, 0.9, 0.97):
        mob = MarkovMobility(cluster, locality=locality, request_rate=1.5)
        insts = [mob.instance(2, 50.0, rng=k) for k in range(5)]
        opt_pr, ratio, tight = _measure(insts)
        pis = []
        for inst in insts:
            S = lz_entropy_rate(inst.srv[1:].tolist())
            pis.append(max_predictability(S, cluster.num_servers))
        rows.append(
            {
                "locality": locality,
                "Π_max": float(np.mean(pis)),
                "opt cost/request": opt_pr,
                "SC/OPT": ratio,
            }
        )
    emit(
        "workload_mobility_sweep",
        format_table(rows, precision=4),
        header="A4: trajectory locality sweep (grid 2x3, 2 users)",
    )
    # More locality -> more predictable -> cheaper optimal service.
    assert rows[-1]["Π_max"] > rows[0]["Π_max"]
    assert rows[-1]["opt cost/request"] < rows[0]["opt cost/request"]

    mob = MarkovMobility(cluster, locality=0.9, request_rate=1.5)
    inst = mob.instance(2, 50.0, rng=0)
    benchmark(solve_offline, inst)


def test_burstiness_sweep(benchmark):
    rows = []
    for hi in (1.0, 4.0, 16.0):
        insts = [
            mmpp_instance(120, 6, rate_low=0.2, rate_high=hi, rng=k)
            for k in range(5)
        ]
        opt_pr, ratio, tight = _measure(insts)
        rows.append(
            {
                "burst rate": hi,
                "opt cost/request": opt_pr,
                "SC/OPT": ratio,
                "C(n)/B_n": tight,
            }
        )
    emit(
        "workload_burstiness_sweep",
        format_table(rows, precision=4),
        header="A4: burstiness sweep (MMPP, rate_low 0.2)",
    )
    assert all(r["SC/OPT"] <= 3.0 + 1e-6 for r in rows)

    inst = mmpp_instance(120, 6, rng=0)
    benchmark(lambda: SpeculativeCaching().run(inst))


def test_diurnal_amplitude_sweep(benchmark):
    rows = []
    for amplitude in (0.0, 0.5, 1.0):
        insts = [
            diurnal_instance(
                96.0, 6, base_rate=1.5, amplitude=amplitude, rng=k
            )
            for k in range(5)
        ]
        opt_pr, ratio, tight = _measure(insts)
        rows.append(
            {
                "amplitude": amplitude,
                "opt cost/request": opt_pr,
                "SC/OPT": ratio,
                "C(n)/B_n": tight,
            }
        )
    emit(
        "workload_diurnal_sweep",
        format_table(rows, precision=4),
        header="A4: diurnal amplitude sweep (period 24, base rate 1.5)",
    )
    assert all(r["SC/OPT"] <= 3.0 + 1e-6 for r in rows)

    inst = diurnal_instance(96.0, 6, base_rate=1.5, rng=0)
    benchmark(solve_offline, inst)
