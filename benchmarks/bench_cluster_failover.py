"""P7 — replicated-cluster failover: time-to-ready, zero loss, recovery.

Measures the failover path of :class:`repro.service.cluster.ReplicaSet`
end to end — real server subprocesses over a shared WAL directory,
driven through the failover-aware cluster client — and writes
``BENCH_cluster_failover.json`` (at the repository root) plus a
human-readable table under ``benchmarks/out/``:

1. **Baseline** — closed-loop replay of the first phase of events
   against the healthy cluster (latency with every replica up).
2. **Failover** — one replica is SIGKILLed; the supervisor fences it,
   re-leases its shards to survivors by resuming the per-shard WALs,
   and republishes the routing map.  ``failover_ready_s`` is that whole
   fence→acquire→publish span; the disruption phase replays the next
   slice of events *through* the handoff (redrives included in its
   latency).
3. **Recovery** — the final slice against the shrunken cluster; its
   latency shows the steady state after failover.
4. **Identity** — the merged cluster decision digest (and each
   per-shard ``(seq, digest)``) must equal an uninterrupted
   single-server reference over the same events: decisions lost = 0.

Gate policy (mirrors the repo's other benchmarks):

* **identity + loss gates are hard everywhere** — digest equality,
  zero give-ups, zero lost decisions, and a bounded
  ``failover_ready_s`` (< 10 s even on a loaded CI box).
* **latency-recovery gates are hard only on real hardware**
  (``usable_cpus >= 4``) — post-failover p50 must stay within 10x of
  the healthy baseline; recorded honestly everywhere.

``CLUSTER_BENCH_SMOKE=1`` shrinks everything to seconds for CI smoke
jobs.

Digest comparability: closed-loop lanes are ``crc32(item) % lanes`` and
shards are ``crc32(item) % shards``, so driving with ``concurrency ==
shards`` pins each shard's events to one lane — per-shard apply order
(hence the digest chain) is identical across runs.
"""

import asyncio
import json
import os
import pathlib

from repro.analysis import format_table
from repro.service.cluster import ClusterConfig, ReplicaSet
from repro.service.loadgen import (
    cluster_stats,
    replay_cluster,
    synthetic_events,
)

from _util import emit

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_cluster_failover.json"

SMOKE = os.environ.get("CLUSTER_BENCH_SMOKE") == "1"
M = 8
SHARDS = 4
REPLICAS = 3
if SMOKE:
    ITEMS = 6
    EVENTS = 180
else:
    ITEMS = 10
    EVENTS = 900


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _reference_digest(events, tmp: pathlib.Path) -> dict:
    """Uninterrupted single server over all shards: the identity anchor."""
    from repro.service.loadgen import run_load
    from repro.service.server import CacheServer, ServerConfig

    async def run():
        server = CacheServer(
            ServerConfig(
                journal_dir=str(tmp / "reference"),
                shards=SHARDS,
                num_servers=M,
            )
        )
        await server.start()
        res = await run_load(
            "127.0.0.1", server.port, events, concurrency=SHARDS
        )
        await server.shutdown()
        assert res.give_ups == 0
        return res.stats

    return asyncio.run(run())


def test_cluster_failover(benchmark, tmp_path):
    cpus = _usable_cpus()
    events = synthetic_events(ITEMS, EVENTS, M, seed=77)
    third = len(events) // 3
    phases = (events[:third], events[third : 2 * third], events[2 * third :])

    reference = _reference_digest(events, tmp_path)

    rs = ReplicaSet(
        ClusterConfig(
            journal_dir=str(tmp_path / "cluster"),
            replicas=REPLICAS,
            shards=SHARDS,
            num_servers=M,
            sync=False,
        )
    )
    rs.start()
    try:
        baseline = replay_cluster(
            rs.map_path, phases[0], concurrency=SHARDS, fetch_stats=False
        ).to_dict()

        victim = rs.owner_of(0)
        moved = rs.kill_replica(victim)
        failover = rs.failover_log[0]

        disruption = replay_cluster(
            rs.map_path,
            phases[1],
            concurrency=SHARDS,
            retries=256,
            fetch_stats=False,
        ).to_dict()
        recovery = replay_cluster(
            rs.map_path, phases[2], concurrency=SHARDS, fetch_stats=False
        ).to_dict()

        merged = asyncio.run(cluster_stats(rs.map_path))
    finally:
        rs.stop()

    # Identity + loss gates: hard on every machine.
    for phase_name, report in (
        ("baseline", baseline),
        ("disruption", disruption),
        ("recovery", recovery),
    ):
        assert report["give_ups"] == 0, f"{phase_name} phase gave up events"
    assert merged["digest"] == reference["digest"], (
        f"cluster digest {merged['digest']} != single-server "
        f"reference {reference['digest']}"
    )
    ref_rows = {r["shard"]: r for r in reference["shards"]}
    lost = sum(
        ref_rows[r["shard"]]["seq"] - r["seq"] for r in merged["shards"]
    )
    assert lost == 0, f"{lost} decisions lost across failover"
    assert failover["ready_s"] < 10.0, (
        f"failover took {failover['ready_s']:.2f}s to fence + re-lease "
        f"{len(moved)} shard(s)"
    )

    # Latency-recovery gate: hard only where the hardware can keep up.
    gates_hard = cpus >= 4
    p50_ratio = (
        recovery["p50_ms"] / baseline["p50_ms"]
        if baseline["p50_ms"] > 0
        else 1.0
    )
    if gates_hard:
        assert p50_ratio < 10.0, (
            f"post-failover p50 {recovery['p50_ms']:.1f} ms is "
            f"{p50_ratio:.1f}x the healthy baseline"
        )

    payload = {
        "benchmark": "cluster_failover",
        "smoke": SMOKE,
        "usable_cpus": cpus,
        "config": {
            "items": ITEMS,
            "events": len(events),
            "m": M,
            "shards": SHARDS,
            "replicas": REPLICAS,
        },
        "gates": {
            "identity_hard": True,
            "zero_loss_hard": True,
            "failover_ready_hard_s": 10.0,
            "latency_recovery_hard": gates_hard,
            "latency_recovery_note": "p50 ratio asserted when usable_cpus "
            ">= 4; always recorded",
        },
        "failover": {
            "victim_replica": victim,
            "shards_moved": moved,
            "ready_s": failover["ready_s"],
            "epoch_after": failover["epoch"],
        },
        "decisions_lost": lost,
        "digest_match": merged["digest"] == reference["digest"],
        "post_failover_p50_ratio": p50_ratio,
        "phases": {
            "baseline": baseline,
            "disruption": disruption,
            "recovery": recovery,
        },
        "merged_stats": {
            "digest": merged["digest"],
            "processed": merged["processed"],
            "epoch": merged["epoch"],
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    table_rows = [
        {
            "phase": name,
            "events": report["sent"],
            "achieved_rps": f"{report['achieved_rps']:.0f}",
            "p50_ms": f"{report['p50_ms']:.1f}",
            "p99_ms": f"{report['p99_ms']:.1f}",
            "retries": report["retries"],
        }
        for name, report in (
            ("baseline (3 up)", baseline),
            ("disruption (kill)", disruption),
            ("recovery (2 up)", recovery),
        )
    ]
    emit(
        "cluster_failover",
        format_table(table_rows)
        + f"\n\nfailover: replica {victim} SIGKILLed, shards {moved} "
        f"re-leased in {failover['ready_s'] * 1000:.0f} ms "
        f"(gate < 10000 ms)"
        + f"\ndecisions lost: {lost} (gate = 0); merged digest "
        f"{'matches' if payload['digest_match'] else 'DIVERGES FROM'} "
        "the single-server reference"
        + f"\npost-failover p50 ratio: {p50_ratio:.2f}x "
        f"(gate < 10x on >=4 cpus)",
        header=f"P7: cluster failover (replicas={REPLICAS}, "
        f"shards={SHARDS}, m={M}, {cpus} usable cpu(s), smoke={SMOKE})",
    )

    benchmark(lambda: synthetic_events(ITEMS, 100, M, seed=1) and None)
