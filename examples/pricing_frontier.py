"""Pricing a real deployment: dollars, windows, and the latency frontier.

Connects the abstract model to a concrete provisioning decision:

1. calibrate μ and λ from representative cloud list prices and an item
   size — and see what the speculative window Δt = λ/μ *means in hours*;
2. generate a day of diurnal traffic over an edge fleet;
3. solve it and race the online policies;
4. place every policy on the cost-latency plane and report the Pareto
   front — the slide a capacity planner would actually look at.

Run:  python examples/pricing_frontier.py
"""

from repro import solve_offline
from repro.analysis import (
    PRICE_POINTS,
    calibrate,
    describe_window,
    format_table,
)
from repro.emulator import LatencyModel, cost_latency_frontier, pareto_front
from repro.online import (
    AlwaysTransfer,
    NeverDelete,
    RandomizedTTL,
    SpeculativeCaching,
)
from repro.workloads import diurnal_instance


def main() -> None:
    # ---- 1. dollars -> model parameters ------------------------------------
    item_gb = 25.0  # a chunky ML model artefact
    print(f"calibrating for a {item_gb:.0f} GB shared item:\n")
    rows = []
    for name, plan in PRICE_POINTS.items():
        model = calibrate(plan, item_gb, time_unit_hours=1.0)
        rows.append(
            {
                "pricing tier": name,
                "mu [$/h/copy]": model.mu,
                "lam [$/transfer]": model.lam,
                "speculative window": describe_window(model),
            }
        )
    print(format_table(rows, precision=3))
    print(
        "\nReading: object-store economics keep idle copies for months;"
        " only edge-SSD\npricing produces the hours-scale windows where "
        "online eviction decisions bite.\n"
    )

    # ---- 2-4. four months of weekly-seasonal traffic on the edge tier ------
    # Time unit: one day.  The edge window is ~2 days, so requests a few
    # days apart are exactly the contested regime.
    cost = calibrate(PRICE_POINTS["cdn-edge"], item_gb, time_unit_hours=24.0)
    inst = diurnal_instance(
        120.0,
        6,
        base_rate=0.8,
        amplitude=0.9,
        period=7.0,  # weekly seasonality
        cost=cost,
        rng=7,
    )
    opt = solve_offline(inst)
    print(
        f"four months of weekly-seasonal traffic: {inst}\n"
        f"optimal bill: ${opt.optimal_cost:.2f} "
        f"(lower bound ${inst.running_bound():.2f})\n"
    )

    latency = LatencyModel(hit=2.0, fetch_base=28.0)
    points = cost_latency_frontier(
        inst,
        [
            ("SC", lambda: SpeculativeCaching()),
            ("SC half window", lambda: SpeculativeCaching(window_factor=0.5)),
            ("randomized-ttl", lambda: RandomizedTTL(seed=1)),
            ("always-transfer", lambda: AlwaysTransfer()),
            ("never-delete", lambda: NeverDelete()),
        ],
        latency=latency,
    )
    front = {p.policy for p in pareto_front(points)}
    rows = [
        {
            "policy": p.policy,
            "bill [$]": p.cost,
            "p95 latency [ms]": p.p95_latency,
            "hit ratio": p.hit_ratio,
            "pareto": p.policy in front,
        }
        for p in sorted(points, key=lambda p: p.cost)
    ]
    print(format_table(rows, precision=4, title="cost-latency frontier"))
    print(
        "\nReading: at these prices the frontier has exactly two ends — "
        "the hindsight optimum\n(cheapest bill, decent hit ratio for "
        "free) and never-delete (3x the bill buys a ~94%\nhit ratio). "
        "Every online policy including SC lands strictly inside: online, "
        "you pay\neither in transfers or in rent, and the planner's job "
        "is picking which."
    )


if __name__ == "__main__":
    main()
