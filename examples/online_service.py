"""Online data service: policies racing on the same request stream.

Simulates a bursty mobile data service (MMPP arrivals over a Zipf server
population) and replays it through every online policy in the library —
Speculative Caching (with and without epochs), the TTL family, the
ski-rental randomized window, and the naive baselines — then scores each
against the off-line optimum computed in hindsight.

Run:  python examples/online_service.py
"""

from repro import solve_offline
from repro.analysis import format_table
from repro.online import (
    AlwaysTransfer,
    NeverDelete,
    RandomizedTTL,
    SpeculativeCaching,
)
from repro.workloads import mmpp_instance


def main() -> None:
    instance = mmpp_instance(
        300,
        6,
        rate_low=0.25,
        rate_high=6.0,
        switch_prob=0.04,
        zipf_s=0.9,
        popularity="zipf",
        rng=2024,
    )
    print(f"bursty service stream: {instance}\n")

    hindsight = solve_offline(instance)
    print(
        f"off-line optimum (hindsight): {hindsight.optimal_cost:.4g} "
        f"(lower bound B_n = {instance.running_bound():.4g})\n"
    )

    policies = [
        SpeculativeCaching(),
        SpeculativeCaching(epoch_size=25),
        SpeculativeCaching(window_factor=0.5),
        SpeculativeCaching(window_factor=2.0),
        RandomizedTTL(seed=7),
        AlwaysTransfer(),
        NeverDelete(),
    ]

    rows = []
    for policy in policies:
        run = policy.run(instance)
        rows.append(
            {
                "policy": run.algorithm
                + (" +epochs(25)" if getattr(policy, "epoch_size", None) else ""),
                "cost": run.cost,
                "vs OPT": run.cost / hindsight.optimal_cost,
                "transfers": run.num_transfers,
                "local hits": run.counters.get("local_hits", 0),
                "expirations": run.counters.get("expirations", 0),
            }
        )
    rows.sort(key=lambda r: r["cost"])
    print(format_table(rows, precision=4, title="online policies, best first"))

    sc_row = next(r for r in rows if r["policy"].startswith("speculative"))
    print(
        f"\nReading: SC lands at {sc_row['vs OPT']:.2f}x the hindsight "
        f"optimum — well inside its\nfactor-3 guarantee — while each naive "
        f"baseline loses badly in the regime it wasn't\nbuilt for."
    )


if __name__ == "__main__":
    main()
