"""The information ladder: from blind online caching to the full optimum.

The paper's core tension is online vs. off-line: SC knows nothing about
the future and pays up to 3x; the DP knows everything and pays 1x.  Real
mobile services sit in between — they *predict*.  This example walks the
whole ladder on one trajectory workload:

    SC  ->  learned Markov predictor  ->  k-lookahead  ->  oracle  ->  OPT

and also demos the streaming DP as a live "regret gauge": what the
optimum would have paid for the prefix served so far.

Run:  python examples/predictive_service.py
"""

from repro import (
    CostModel,
    SpeculativeCaching,
    StreamingSolver,
    solve_offline,
)
from repro.analysis import format_table
from repro.network import Cluster
from repro.online import MarkovPredictor, OracleNextRequest, PredictiveCaching
from repro.workloads import MarkovMobility


def main() -> None:
    cluster = Cluster.grid(2, 3, cost=CostModel(mu=1.0, lam=1.5))
    mobility = MarkovMobility(cluster, locality=0.9, request_rate=1.5)
    instance = mobility.instance(
        num_users=3, duration=80.0, cost=cluster.cost, rng=21
    )
    print(f"trajectory workload: {instance}\n")

    opt = solve_offline(instance).optimal_cost

    ladder = [
        ("SC (0 bits of future)", SpeculativeCaching()),
        ("+ learned Markov predictor", PredictiveCaching(MarkovPredictor())),
        ("+ 1-request lookahead", PredictiveCaching(OracleNextRequest(horizon=1))),
        ("+ 5-request lookahead", PredictiveCaching(OracleNextRequest(horizon=5))),
        ("+ perfect next-use oracle", PredictiveCaching(OracleNextRequest())),
    ]
    rows = []
    for name, algo in ladder:
        run = algo.run(instance)
        rows.append(
            {
                "information level": name,
                "cost": run.cost,
                "vs OPT": run.cost / opt,
                "transfers": run.num_transfers,
            }
        )
    rows.append(
        {
            "information level": "off-line optimum (DP)",
            "cost": opt,
            "vs OPT": 1.0,
            "transfers": len(solve_offline(instance).schedule().transfers),
        }
    )
    print(format_table(rows, precision=4, title="the information ladder"))

    # ---- live regret gauge via the streaming DP ---------------------------
    print("\nlive regret gauge (SC cost so far / optimal cost so far):")
    run = SpeculativeCaching().run(instance)
    solver = StreamingSolver(
        instance.num_servers, cost=instance.cost, origin=instance.origin
    )
    marks = {instance.n // 4, instance.n // 2, (3 * instance.n) // 4, instance.n}
    for i in range(1, instance.n + 1):
        solver.append(float(instance.t[i]), int(instance.srv[i]))
        if i in marks:
            t_i = float(instance.t[i])
            sc_so_far = instance.cost.mu * sum(
                min(iv.end, t_i) - iv.start
                for iv in run.schedule.canonical().intervals
                if iv.start < t_i
            ) + instance.cost.lam * sum(
                1 for tr in run.schedule.transfers if tr.time <= t_i
            )
            print(
                f"  after {i:>4} requests: "
                f"{sc_so_far / solver.optimal_cost:.3f}"
            )
    print(
        "\nReading: information helps only when there is enough of it — "
        "shallow predictions\n(the learned predictor, 1-request lookahead) "
        "can even lose to plain SC here, because\ndropping a copy whose "
        "reuse lies just past the horizon forces extra transfers.  A\n"
        "handful of requests of lookahead then nearly closes the entire "
        "gap to the off-line\noptimum, and the streaming DP prices the "
        "remaining regret in real time."
    )


if __name__ == "__main__":
    main()
