"""Trace mining: from a raw service log to an optimal caching plan.

The paper assumes off-line sequences are "secured in advance by mining
the data service logs".  This example walks that pipeline end to end:

1. synthesise a messy multi-item service log (CSV, interleaved items,
   duplicate timestamps from clock skew across shards),
2. mine it into one per-item request sequence,
3. solve that sequence optimally and print the plan a provisioning
   system would execute,
4. sanity-check the plan against the online alternative.

Run:  python examples/trace_mining.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CostModel, SpeculativeCaching, solve_offline
from repro.workloads import TraceRecord, mine_instance, write_trace


def synthesise_log(path: Path) -> None:
    rng = np.random.default_rng(99)
    records = []
    t = 0.0
    for _ in range(120):
        t += float(rng.exponential(0.7))
        item = rng.choice(["catalog", "profile-db", "ml-model"])
        records.append(
            TraceRecord(
                time=round(t, 2),  # coarse stamps -> duplicates happen
                server=int(rng.integers(0, 5)),
                user=int(rng.integers(0, 40)),
                item=str(item),
            )
        )
    rng.shuffle(records)  # shards arrive out of order
    write_trace(records, path)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "service.log.csv"
        synthesise_log(log_path)
        print(f"wrote synthetic service log: {log_path.name}")

        cost = CostModel(mu=1.0, lam=2.0)
        instance = mine_instance(
            log_path, item="ml-model", num_servers=5, cost=cost
        )
        print(f"mined 'ml-model' accesses: {instance}\n")

        result = solve_offline(instance)
        schedule = result.schedule()
        print("provisioning plan (optimal off-line schedule):")
        print(schedule.describe(cost))

        online = SpeculativeCaching().run(instance)
        savings = (online.cost - result.optimal_cost) / online.cost * 100
        print(
            f"\nmining the log instead of reacting online saves "
            f"{savings:.1f}% of the service cost\n"
            f"(offline {result.optimal_cost:.4g} vs online {online.cost:.4g})"
        )


if __name__ == "__main__":
    main()
