"""Mobile-cloud scenario: trajectory-driven caching for roaming users.

The paper's motivating setting (Section I): users roam between edge
servers, their movements are highly predictable (Song et al. report 93%
for human mobility), and a service provider can therefore solve the
*off-line* problem against a predicted request sequence.

This example builds a 3x3 edge grid, generates Markov-mobility users at
two locality levels, quantifies predictability with the Lempel-Ziv /
Fano machinery, and shows how the off-line optimum exploits trajectory
locality while online SC tracks it within its factor-3 guarantee.

Run:  python examples/mobile_trajectory.py
"""

from repro import CostModel, SpeculativeCaching, solve_offline
from repro.analysis import format_table
from repro.network import Cluster
from repro.workloads import MarkovMobility, lz_entropy_rate, max_predictability


def study(locality: float, cluster: Cluster, seed: int) -> dict:
    mobility = MarkovMobility(
        cluster, locality=locality, request_rate=1.5, neighbors=3
    )
    instance = mobility.instance(
        num_users=3, duration=60.0, cost=cluster.cost, rng=seed
    )

    entropy = lz_entropy_rate(instance.srv[1:].tolist())
    pi_max = max_predictability(entropy, cluster.num_servers)

    offline = solve_offline(instance)
    online = SpeculativeCaching().run(instance)
    return {
        "locality": locality,
        "requests": instance.n,
        "Π_max (Fano)": pi_max,
        "opt cost/req": offline.optimal_cost / instance.n,
        "SC/OPT": online.cost / offline.optimal_cost,
        "transfers (opt)": len(offline.schedule().transfers),
        "transfers (SC)": online.num_transfers,
    }


def main() -> None:
    cluster = Cluster.grid(3, 3, spacing=1.0, cost=CostModel(mu=1.0, lam=2.0))
    print(f"edge fleet: {cluster}\n")

    rows = [
        study(locality, cluster, seed=11)
        for locality in (0.3, 0.6, 0.85, 0.95)
    ]
    print(
        format_table(
            rows,
            precision=4,
            title="trajectory locality -> predictability -> service cost",
        )
    )
    print(
        "\nReading: high-locality trajectories are near the paper's 93% "
        "predictability premise,\nand the off-line optimum converts that "
        "predictability into fewer transfers and lower cost;\nonline SC "
        "stays within its factor-3 guarantee throughout."
    )


if __name__ == "__main__":
    main()
