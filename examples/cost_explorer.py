"""Cost-model explorer: how λ/μ shapes the optimal schedule.

The single knob that matters in the homogeneous model is the ratio
``λ/μ`` — the speculative window.  This example fixes one request
sequence and sweeps the transfer cost:

* cheap transfers (small λ/μ): the optimum migrates the copy around and
  rarely replicates;
* expensive transfers (large λ/μ): the optimum replicates and holds
  copies, approaching the never-delete extreme.

For three representative settings it renders the schedule so the
structural shift is visible, then prints the full sweep as a table.

Run:  python examples/cost_explorer.py
"""

import numpy as np

from repro import CostModel, ProblemInstance, render_schedule, solve_offline
from repro.analysis import format_table
from repro.workloads import poisson_zipf_instance


def rebuild_with_cost(instance: ProblemInstance, cost: CostModel) -> ProblemInstance:
    return ProblemInstance.from_arrays(
        instance.t[1:],
        instance.srv[1:],
        num_servers=instance.num_servers,
        cost=cost,
        origin=instance.origin,
    )


def main() -> None:
    base = poisson_zipf_instance(24, 3, rate=1.0, zipf_s=0.7, rng=5)
    print(f"fixed request sequence: {base}\n")

    rows = []
    for lam in (0.1, 0.3, 1.0, 3.0, 10.0):
        inst = rebuild_with_cost(base, CostModel(mu=1.0, lam=lam))
        res = solve_offline(inst)
        sched = res.schedule()
        copy_time = sum(iv.duration for iv in sched.canonical().intervals)
        rows.append(
            {
                "lambda/mu": lam,
                "optimal cost": res.optimal_cost,
                "transfers": len(sched.transfers),
                "copy-time": copy_time,
                "avg copies": copy_time / inst.horizon,
            }
        )
        if lam in (0.1, 1.0, 10.0):
            print(
                render_schedule(
                    sched,
                    inst,
                    width=64,
                    legend=False,
                    title=f"--- optimal schedule at lambda/mu = {lam} ---",
                )
            )
            print()

    print(format_table(rows, precision=4, title="transfer-cost sweep"))
    transfers = [r["transfers"] for r in rows]
    print(
        f"\nReading: transfers fall monotonically ({transfers}) as they get "
        f"pricier, while held\ncopy-time rises — the optimum slides from "
        f"migrate-everywhere to replicate-and-hold."
    )


if __name__ == "__main__":
    main()
