"""Quickstart: solve a small cost-driven caching instance, off-line and online.

Builds the paper's running example (Fig. 6), computes the optimal
schedule with the O(mn) DP, validates it, renders the space-time diagram,
then replays the same requests through the online Speculative Caching
algorithm and compares costs.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    ProblemInstance,
    SpeculativeCaching,
    render_schedule,
    solve_offline,
    validate_schedule,
)


def main() -> None:
    # A fully connected fleet of 4 edge servers; the shared item starts on
    # server 0 at t=0.  Caching rent mu=1 per copy-second, transfers lam=1.
    instance = ProblemInstance(
        requests=[
            (0.5, 1),
            (0.8, 2),
            (1.1, 3),
            (1.4, 0),
            (2.6, 1),
            (3.2, 1),
            (4.0, 2),
        ],
        num_servers=4,
        cost=CostModel(mu=1.0, lam=1.0),
        origin=0,
    )
    print(f"instance: {instance}")
    print(f"running lower bound B_n = {instance.running_bound():.4g}\n")

    # ---- off-line optimum (Contribution 1) --------------------------------
    result = solve_offline(instance)
    schedule = result.schedule()
    validate_schedule(schedule, instance, require_standard_form=True)

    print(f"optimal service cost C(n) = {result.optimal_cost:.4g}")
    print(schedule.describe(instance.cost))
    print()
    print(render_schedule(schedule, instance, title="optimal off-line schedule"))
    print()

    # ---- online speculative caching (Contribution 2) ----------------------
    run = SpeculativeCaching().run(instance)
    ratio = run.cost / result.optimal_cost
    print(f"online SC cost = {run.cost:.4g}")
    print(f"competitive ratio = {ratio:.3f}  (Theorem 3 guarantees <= 3)")
    print(f"counters: {run.counters}")


if __name__ == "__main__":
    main()
